//! `--trace` plumbing shared by the benchmark binaries.
//!
//! The bench bins construct their runtimes internally, so a sink cannot be
//! attached by hand; instead this module installs a thread-local *default*
//! sink ([`alphonse::trace::set_default_sink`]) before the experiments run,
//! which every runtime built afterwards picks up. Three modes:
//!
//! | flag             | consumer                           | artifact               |
//! |------------------|------------------------------------|------------------------|
//! | `--trace chrome` | [`alphonse::trace::ChromeTrace`]   | `TRACE_<stem>.json`    |
//! | `--trace dot`    | [`alphonse::trace::GraphSink`]     | `TRACE_<stem>.dot`     |
//! | `--trace hot`    | [`alphonse::trace::Profiler`]      | top-K table on stdout  |
//!
//! The chrome artifact loads directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`; the DOT artifact renders with
//! `dot -Tsvg TRACE_<stem>.dot`. When a binary runs several experiments the
//! chrome timeline and the profiler aggregate across all of them, while the
//! graph mirror keeps the most recently constructed runtime.

use alphonse::trace::{self, ChromeTrace, GraphSink, Profiler, TraceSink};
use std::rc::Rc;

/// Which trace consumer `--trace` selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Chrome trace-event JSON (Perfetto-loadable) written to `TRACE_<stem>.json`.
    Chrome,
    /// DOT rendering of the final dependency graph written to `TRACE_<stem>.dot`.
    Dot,
    /// Per-node hot-spot table printed to stdout.
    Hot,
}

/// Extracts a `--trace <mode>` or `--trace=<mode>` flag from `args`,
/// removing the consumed tokens so downstream positional parsing never sees
/// them.
///
/// # Errors
///
/// Returns a usage message if the flag is present but the mode is missing
/// or not one of `chrome`, `dot`, `hot`.
pub fn take_trace_flag(args: &mut Vec<String>) -> Result<Option<TraceMode>, String> {
    let mode_of = |s: &str| match s {
        "chrome" => Ok(TraceMode::Chrome),
        "dot" => Ok(TraceMode::Dot),
        "hot" => Ok(TraceMode::Hot),
        other => Err(format!(
            "unknown trace mode `{other}` (expected chrome, dot or hot)"
        )),
    };
    let Some(i) = args
        .iter()
        .position(|a| a == "--trace" || a.starts_with("--trace="))
    else {
        return Ok(None);
    };
    let flag = args.remove(i);
    let mode = if let Some(value) = flag.strip_prefix("--trace=") {
        mode_of(value)?
    } else {
        if i >= args.len() {
            return Err("--trace requires a mode: chrome, dot or hot".to_string());
        }
        mode_of(&args.remove(i))?
    };
    Ok(Some(mode))
}

/// An installed trace session: holds the sink for the chosen [`TraceMode`]
/// and knows how to flush its artifact.
///
/// Construct with [`TraceSession::start`] *before* any runtime is built and
/// call [`TraceSession::finish`] after the workload completes.
pub struct TraceSession {
    mode: TraceMode,
    stem: String,
    chrome: Option<Rc<ChromeTrace>>,
    graph: Option<Rc<GraphSink>>,
    profiler: Option<Rc<Profiler>>,
}

impl TraceSession {
    /// Creates the sink for `mode`, installs it as the thread-local default
    /// sink, and remembers `stem` for the artifact file name.
    pub fn start(mode: TraceMode, stem: &str) -> TraceSession {
        let mut session = TraceSession {
            mode,
            stem: stem.to_string(),
            chrome: None,
            graph: None,
            profiler: None,
        };
        let sink: Rc<dyn TraceSink> = match mode {
            TraceMode::Chrome => {
                let s = Rc::new(ChromeTrace::new());
                session.chrome = Some(s.clone());
                s
            }
            TraceMode::Dot => {
                let s = Rc::new(GraphSink::new());
                session.graph = Some(s.clone());
                s
            }
            TraceMode::Hot => {
                let s = Rc::new(Profiler::new());
                session.profiler = Some(s.clone());
                s
            }
        };
        trace::set_default_sink(Some(sink));
        session
    }

    /// Convenience: parse `--trace` out of `args` and start a session if the
    /// flag was given. Exits the process with a usage message on a malformed
    /// flag (bench binaries have no fancier error channel).
    pub fn from_args(args: &mut Vec<String>, stem: &str) -> Option<TraceSession> {
        match take_trace_flag(args) {
            Ok(mode) => mode.map(|m| TraceSession::start(m, stem)),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Uninstalls the default sink and flushes the artifact: writes
    /// `TRACE_<stem>.json` / `TRACE_<stem>.dot` into the current directory
    /// (next to the `BENCH_*.json` files) or prints the hot-node table.
    pub fn finish(self) {
        trace::set_default_sink(None);
        match self.mode {
            TraceMode::Chrome => {
                let path = format!("TRACE_{}.json", self.stem);
                let json = self.chrome.expect("chrome session holds a sink").to_json();
                std::fs::write(&path, json).expect("write chrome trace");
                eprintln!("wrote {path} (load at https://ui.perfetto.dev)");
            }
            TraceMode::Dot => {
                let path = format!("TRACE_{}.dot", self.stem);
                let dot = self.graph.expect("dot session holds a sink").to_dot();
                std::fs::write(&path, dot).expect("write dot trace");
                eprintln!("wrote {path} (render with: dot -Tsvg {path})");
            }
            TraceMode::Hot => {
                let prof = self.profiler.expect("hot session holds a sink");
                println!("\n{}", prof.report(20));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_separate_and_inline_forms() {
        let mut a = args(&["--quick", "--trace", "chrome", "e2"]);
        assert_eq!(take_trace_flag(&mut a).unwrap(), Some(TraceMode::Chrome));
        assert_eq!(a, args(&["--quick", "e2"]));

        let mut b = args(&["--trace=hot"]);
        assert_eq!(take_trace_flag(&mut b).unwrap(), Some(TraceMode::Hot));
        assert!(b.is_empty());
    }

    #[test]
    fn absent_flag_is_none_and_args_untouched() {
        let mut a = args(&["--json", "e6"]);
        assert_eq!(take_trace_flag(&mut a).unwrap(), None);
        assert_eq!(a, args(&["--json", "e6"]));
    }

    #[test]
    fn rejects_bad_or_missing_mode() {
        assert!(take_trace_flag(&mut args(&["--trace", "flame"])).is_err());
        assert!(take_trace_flag(&mut args(&["--trace"])).is_err());
        assert!(take_trace_flag(&mut args(&["--trace="])).is_err());
    }
}
