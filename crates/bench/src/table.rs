//! Markdown-ish table rendering for experiment output.

use alphonse::HistogramSnapshot;
use std::fmt;

/// Renders quantile readouts of a latency histogram as table cells: one
/// cell per `q`, each `h.percentile(q) / per_unit` with one decimal (pass
/// `per_unit = 1e3` for ns→µs, `1.0` for histograms already in the target
/// unit). An empty histogram renders `-` cells so a metrics-off build still
/// produces well-formed rows.
pub fn percentile_cells(h: &HistogramSnapshot, qs: &[f64], per_unit: f64) -> Vec<String> {
    qs.iter()
        .map(|&q| {
            if h.count() == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", h.percentile(q) as f64 / per_unit)
            }
        })
        .collect()
}

/// A printable experiment result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id + claim, printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    pub fn row<T: fmt::Display>(&mut self, cells: &[T]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a pre-stringified row.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Serializes the table as JSON: the title plus one object per row
    /// keyed by column header. Cells that parse as numbers are emitted as
    /// JSON numbers so downstream tooling can chart the perf trajectory.
    /// Hand-rolled because the workspace builds offline without serde.
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn cell_value(s: &str) -> String {
            if let Ok(v) = s.parse::<i64>() {
                return v.to_string();
            }
            if let Ok(v) = s.parse::<f64>() {
                if v.is_finite() {
                    return format!("{v}");
                }
            }
            format!("\"{}\"", escape(s))
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"title\": \"{}\",\n", escape(&self.title)));
        out.push_str("  \"rows\": [\n");
        for (ri, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            for (ci, (header, cell)) in self.headers.iter().zip(row).enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape(header), cell_value(cell)));
            }
            out.push('}');
            if ri + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:>width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("E0 — demo", &["n", "work"]);
        t.row(&[1, 10]);
        t.row(&[100, 2000]);
        let s = t.to_string();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("|   n | work |"));
        assert!(s.contains("| 100 | 2000 |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&[1]);
    }

    #[test]
    fn percentile_cells_scale_and_handle_empty() {
        let h = alphonse::Histogram::new();
        assert_eq!(
            percentile_cells(&h.snapshot(), &[0.5, 0.99], 1e3),
            vec!["-", "-"]
        );
        for _ in 0..100 {
            h.record(2_000);
        }
        let cells = percentile_cells(&h.snapshot(), &[0.5, 1.0], 1e3);
        // 2000 ns = 2 µs, up to one log-bucket of quantization.
        for c in &cells {
            let v: f64 = c.parse().unwrap();
            assert!((2.0..=2.7).contains(&v), "cell {c} out of range");
        }
    }
}
