//! Prints the E5 table (UNCHECKED lookups, §6.4).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e5_unchecked(&[255, 1023, 4095])
    );
}
