//! Prints the E15 table (level-parallel wave propagation).
//!
//! Usage: `e15_parallel [--quick]`
//!
//! Build with `--features parallel` for real worker pools; without it every
//! row measures the sequential evaluator (the `set_parallelism` stub).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = if quick {
        alphonse_bench::experiments::e15_parallel(&[0, 1, 2, 4], 16, 6, 200)
    } else {
        alphonse_bench::experiments::e15_parallel(&[0, 1, 2, 4], 32, 20, 200)
    };
    print!("{table}");
    std::fs::write("BENCH_E15.json", table.to_json())
        .unwrap_or_else(|e| panic!("failed to write BENCH_E15.json: {e}"));
    eprintln!("wrote BENCH_E15.json");
}
