//! Prints the E9 table (propagation scheduling, §4.5).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e9_schedule(&[8, 32, 128, 512])
    );
}
