//! Prints the E1 table (maintained height tree, §3.4).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e1_height_tree(&[64, 256, 1024, 4096])
    );
}
