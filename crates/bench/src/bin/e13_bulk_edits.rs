//! Prints the E13 table (bulk edits: `Var::set` vs `Runtime::batch`).
//!
//! Usage: `e13_bulk_edits [--trace <chrome|dot|hot>]`
use alphonse_bench::trace_support::TraceSession;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceSession::from_args(&mut args, "e13");
    print!(
        "{}",
        alphonse_bench::experiments::e13_bulk_edits(&[1, 16, 256, 4096])
    );
    if let Some(session) = trace {
        session.finish();
    }
}
