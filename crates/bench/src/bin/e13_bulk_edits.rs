//! Prints the E13 table (bulk edits: `Var::set` vs `Runtime::batch`).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e13_bulk_edits(&[1, 16, 256, 4096])
    );
}
