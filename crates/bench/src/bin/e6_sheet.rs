//! Prints the E6 tables (spreadsheet §7.2 and attribute grammar §7.1).
//!
//! Usage: `e6_sheet [--trace <chrome|dot|hot>]`
use alphonse_bench::trace_support::TraceSession;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceSession::from_args(&mut args, "e6");
    print!("{}", alphonse_bench::experiments::e6_sheet(&[16, 64, 256]));
    println!();
    print!("{}", alphonse_bench::experiments::e6_ag(&[8, 12, 16, 20]));
    if let Some(session) = trace {
        session.finish();
    }
}
