//! Prints the E6 tables (spreadsheet §7.2 and attribute grammar §7.1).
fn main() {
    print!("{}", alphonse_bench::experiments::e6_sheet(&[16, 64, 256]));
    println!();
    print!("{}", alphonse_bench::experiments::e6_ag(&[8, 12, 16, 20]));
}
