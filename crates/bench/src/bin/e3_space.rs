//! Prints the E3 table (dependency-graph space, §9.1).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e3_space(&[16, 64, 256, 1024])
    );
}
