//! Prints the E2 table (instrumentation overhead, §9.2 + §6.1).
//!
//! Usage: `e2_overhead [--trace <chrome|dot|hot>]`
use alphonse_bench::trace_support::TraceSession;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = TraceSession::from_args(&mut args, "e2");
    print!("{}", alphonse_bench::experiments::e2_overhead(&[4, 6, 8]));
    if let Some(session) = trace {
        session.finish();
    }
}
