//! Prints the E2 table (instrumentation overhead, §9.2 + §6.1).
fn main() {
    print!("{}", alphonse_bench::experiments::e2_overhead(&[4, 6, 8]));
}
