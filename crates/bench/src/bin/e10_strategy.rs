//! Prints the E10 table (demand vs eager, §3.3).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e10_strategy(&[16, 64, 256])
    );
}
