//! Prints the E7 table (maintained AVL, §7.3).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e7_avl(&[256, 1024, 4096])
    );
}
