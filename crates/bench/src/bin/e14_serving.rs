//! Prints the E14 table (sharded multi-session serving on a `SessionPool`).
//!
//! Usage: `e14_serving [--quick]`
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = if quick {
        alphonse_bench::experiments::e14_serving(&[1, 2], 8, 16)
    } else {
        alphonse_bench::experiments::e14_serving(&[1, 2, 4], 16, 64)
    };
    print!("{table}");
    std::fs::write("BENCH_E14.json", table.to_json())
        .unwrap_or_else(|e| panic!("failed to write BENCH_E14.json: {e}"));
    eprintln!("wrote BENCH_E14.json");
}
