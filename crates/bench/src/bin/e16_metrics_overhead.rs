//! Prints the E16 table (metrics-layer overhead, recording on vs off).
//!
//! Usage: `e16_metrics_overhead [--quick]`
//!
//! The off arm uses the runtime kill-switch (`alphonse::metrics::set_enabled`)
//! inside one binary, so both arms share code layout; `overhead_pct` is the
//! honest cost of the always-on instrumentation and must stay ≤2%. The
//! memory-accounting arms (`mem_*` columns) do the same for the tagged
//! counting allocator installed below — both arms pay the allocator's
//! header bookkeeping, so `mem_overhead_pct` isolates the per-allocation
//! counter updates the kill-switch (`alphonse::mem::set_enabled`) gates.
#[global_allocator]
static ALLOC: alphonse::mem::TrackingAlloc = alphonse::mem::TrackingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = alphonse_bench::experiments::e16_metrics_overhead(quick);
    print!("{table}");
    std::fs::write("BENCH_E16.json", table.to_json())
        .unwrap_or_else(|e| panic!("failed to write BENCH_E16.json: {e}"));
    eprintln!("wrote BENCH_E16.json");
}
