//! Prints the E16 table (metrics-layer overhead, recording on vs off).
//!
//! Usage: `e16_metrics_overhead [--quick]`
//!
//! The off arm uses the runtime kill-switch (`alphonse::metrics::set_enabled`)
//! inside one binary, so both arms share code layout; `overhead_pct` is the
//! honest cost of the always-on instrumentation and must stay ≤2%.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = alphonse_bench::experiments::e16_metrics_overhead(quick);
    print!("{table}");
    std::fs::write("BENCH_E16.json", table.to_json())
        .unwrap_or_else(|e| panic!("failed to write BENCH_E16.json: {e}"));
    eprintln!("wrote BENCH_E16.json");
}
