//! Prints the E8 table (non-combinator caching, §4.2).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e8_noncombinator(&[16, 128, 1024])
    );
}
