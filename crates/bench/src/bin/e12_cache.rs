//! Prints the E12 table (LRU cache capacity, §3.3).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e12_cache_capacity(&[8, 32, 128, 256])
    );
}
