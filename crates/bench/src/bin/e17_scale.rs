//! Prints the E17 table (million-node scale stress: build throughput,
//! wave latency, per-subsystem bytes/node).
//!
//! Usage: `e17_scale [--quick]`
//!
//! Installs the subsystem-tagged tracking allocator so the bytes/node
//! columns (and the `mem` section of `METRICS_E17.json`) carry real
//! measurements; without it every memory column reads zero.
#[global_allocator]
static ALLOC: alphonse::mem::TrackingAlloc = alphonse::mem::TrackingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = alphonse_bench::experiments::e17_scale(quick);
    print!("{table}");
    std::fs::write("BENCH_E17.json", table.to_json())
        .unwrap_or_else(|e| panic!("failed to write BENCH_E17.json: {e}"));
    eprintln!("wrote BENCH_E17.json");
}
