//! Prints the E4 table (graph partitioning, §6.3).
fn main() {
    print!(
        "{}",
        alphonse_bench::experiments::e4_partition(&[8, 64, 512])
    );
}
