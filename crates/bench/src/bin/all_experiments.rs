//! Prints every experiment table in order (regenerates EXPERIMENTS.md data).
use alphonse_bench::experiments as ex;

fn main() {
    print!("{}", ex::e1_height_tree(&[64, 256, 1024, 4096]));
    println!();
    print!("{}", ex::e2_overhead(&[4, 6, 8]));
    println!();
    print!("{}", ex::e3_space(&[16, 64, 256, 1024]));
    println!();
    print!("{}", ex::e4_partition(&[8, 64, 512]));
    println!();
    print!("{}", ex::e5_unchecked(&[255, 1023, 4095]));
    println!();
    print!("{}", ex::e6_sheet(&[16, 64, 256]));
    println!();
    print!("{}", ex::e6_ag(&[8, 12, 16, 20]));
    println!();
    print!("{}", ex::e7_avl(&[256, 1024, 4096]));
    println!();
    print!("{}", ex::e8_noncombinator(&[16, 128, 1024]));
    println!();
    print!("{}", ex::e9_schedule(&[8, 32, 128, 512]));
    println!();
    print!("{}", ex::e10_strategy(&[16, 64, 256]));
    println!();
    print!("{}", ex::e12_cache_capacity(&[8, 32, 128, 256]));
}
