//! Prints every experiment table in order (regenerates EXPERIMENTS.md data).
//!
//! Usage: `all_experiments [--json] [e2 e7 ...]`
//!
//! With `--json`, each table is additionally written to `BENCH_<ID>.json`
//! in the current directory so future changes have a machine-readable perf
//! trajectory to diff against. Positional arguments select a subset of
//! experiments by id (case-insensitive), e.g. `all_experiments --json e2`.
use alphonse_bench::experiments as ex;
use alphonse_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    if let Some(unknown) = args.iter().find(|a| a.starts_with("--") && *a != "--json") {
        eprintln!("unknown flag: {unknown}");
        eprintln!("usage: all_experiments [--json] [e2 e7 ...]");
        std::process::exit(2);
    }
    let filter: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_ascii_lowercase())
        .collect();

    type Entry = (&'static str, fn() -> Table);
    let experiments: &[Entry] = &[
        ("E1", || ex::e1_height_tree(&[64, 256, 1024, 4096])),
        ("E2", || ex::e2_overhead(&[4, 6, 8])),
        ("E3", || ex::e3_space(&[16, 64, 256, 1024])),
        ("E4", || ex::e4_partition(&[8, 64, 512])),
        ("E5", || ex::e5_unchecked(&[255, 1023, 4095])),
        ("E6_SHEET", || ex::e6_sheet(&[16, 64, 256])),
        ("E6_AG", || ex::e6_ag(&[8, 12, 16, 20])),
        ("E7", || ex::e7_avl(&[256, 1024, 4096])),
        ("E8", || ex::e8_noncombinator(&[16, 128, 1024])),
        ("E9", || ex::e9_schedule(&[8, 32, 128, 512])),
        ("E10", || ex::e10_strategy(&[16, 64, 256])),
        ("E12", || ex::e12_cache_capacity(&[8, 32, 128, 256])),
    ];

    let mut first = true;
    let mut matched = false;
    for (id, build) in experiments {
        if !filter.is_empty() && !filter.contains(&id.to_ascii_lowercase()) {
            continue;
        }
        matched = true;
        let table = build();
        if !first {
            println!();
        }
        first = false;
        print!("{table}");
        if json {
            let path = format!("BENCH_{id}.json");
            std::fs::write(&path, table.to_json())
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
    if !matched {
        eprintln!("no experiment matches {filter:?}");
        std::process::exit(2);
    }
}
