//! Prints every experiment table in order (regenerates EXPERIMENTS.md data).
//!
//! Usage: `all_experiments [--json] [--quick] [--trace <chrome|dot|hot>] [e2 e7 ...]`
//!
//! With `--json`, each table is additionally written to `BENCH_<ID>.json`
//! in the current directory so future changes have a machine-readable perf
//! trajectory to diff against. With `--quick`, every experiment runs on a
//! reduced parameter set (CI smoke mode — same columns, smaller sizes).
//! With `--trace`, every runtime the experiments build reports into the
//! chosen trace consumer: `chrome` writes a Perfetto-loadable
//! `TRACE_all.json`, `dot` writes the final dependency graph to
//! `TRACE_all.dot`, `hot` prints a per-node hot-spot table (see
//! `alphonse_bench::trace_support`). Positional arguments select a subset
//! of experiments by id (case-insensitive), e.g.
//! `all_experiments --json e2`.
use alphonse_bench::experiments as ex;
use alphonse_bench::table::Table;
use alphonse_bench::trace_support::TraceSession;

/// Subsystem-tagged memory accounting: E17's bytes/node columns and every
/// METRICS_<ID>.json `mem` section need the counting allocator installed
/// at the binary root (the library cannot install it).
#[global_allocator]
static ALLOC: alphonse::mem::TrackingAlloc = alphonse::mem::TrackingAlloc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Must come first: removes `--trace <mode>` so the mode token is not
    // mistaken for an experiment-id filter below.
    let trace = TraceSession::from_args(&mut args, "all");
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(unknown) = args
        .iter()
        .find(|a| a.starts_with("--") && *a != "--json" && *a != "--quick")
    {
        eprintln!("unknown flag: {unknown}");
        eprintln!(
            "usage: all_experiments [--json] [--quick] [--trace <chrome|dot|hot>] [e2 e7 ...]"
        );
        std::process::exit(2);
    }
    let filter: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_ascii_lowercase())
        .collect();

    // Each entry takes the quick flag and picks its parameter set.
    type Entry = (&'static str, fn(bool) -> Table);
    let experiments: &[Entry] = &[
        ("E1", |q| {
            ex::e1_height_tree(if q {
                &[64, 256]
            } else {
                &[64, 256, 1024, 4096]
            })
        }),
        ("E2", |q| {
            ex::e2_overhead(if q { &[4, 6] } else { &[4, 6, 8] })
        }),
        ("E3", |q| {
            ex::e3_space(if q { &[16, 64] } else { &[16, 64, 256, 1024] })
        }),
        ("E4", |q| {
            ex::e4_partition(if q { &[8, 64] } else { &[8, 64, 512] })
        }),
        ("E5", |q| {
            ex::e5_unchecked(if q { &[255] } else { &[255, 1023, 4095] })
        }),
        ("E6_SHEET", |q| {
            ex::e6_sheet(if q { &[16, 64] } else { &[16, 64, 256] })
        }),
        ("E6_AG", |q| {
            ex::e6_ag(if q { &[8, 12] } else { &[8, 12, 16, 20] })
        }),
        ("E7", |q| {
            ex::e7_avl(if q { &[256] } else { &[256, 1024, 4096] })
        }),
        ("E8", |q| {
            ex::e8_noncombinator(if q { &[16, 128] } else { &[16, 128, 1024] })
        }),
        ("E9", |q| {
            ex::e9_schedule(if q { &[8, 32] } else { &[8, 32, 128, 512] })
        }),
        ("E10", |q| {
            ex::e10_strategy(if q { &[16, 64] } else { &[16, 64, 256] })
        }),
        ("E12", |q| {
            ex::e12_cache_capacity(if q { &[8, 32] } else { &[8, 32, 128, 256] })
        }),
        ("E13", |q| {
            ex::e13_bulk_edits(if q {
                &[1, 16, 256]
            } else {
                &[1, 16, 256, 4096]
            })
        }),
        ("E14", |q| {
            if q {
                ex::e14_serving(&[1, 2], 8, 16)
            } else {
                ex::e14_serving(&[1, 2, 4], 16, 64)
            }
        }),
        ("E15", |q| {
            if q {
                ex::e15_parallel(&[0, 1, 2, 4], 16, 6, 200)
            } else {
                ex::e15_parallel(&[0, 1, 2, 4], 32, 20, 200)
            }
        }),
        ("E16", ex::e16_metrics_overhead),
        ("E17", ex::e17_scale),
    ];

    let mut first = true;
    let mut matched = false;
    for (id, build) in experiments {
        if !filter.is_empty() && !filter.contains(&id.to_ascii_lowercase()) {
            continue;
        }
        matched = true;
        let table = build(quick);
        if !first {
            println!();
        }
        first = false;
        print!("{table}");
        if json {
            let path = format!("BENCH_{id}.json");
            std::fs::write(&path, table.to_json())
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
    if !matched {
        eprintln!("no experiment matches {filter:?}");
        std::process::exit(2);
    }
    if let Some(session) = trace {
        session.finish();
    }
}
