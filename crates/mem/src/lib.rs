//! Subsystem-tagged memory accounting for the Alphonse runtime.
//!
//! The runtime's `Stats::mem_bytes_hwm` gauge *estimates* footprint from
//! container capacities; this crate *measures* it. [`TrackingAlloc`] is a
//! [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper over the system
//! allocator that bills every allocation to a subsystem [`Tag`] — whichever
//! tag the allocating thread's innermost [`scope`] guard names — and keeps
//! per-tag live bytes, live allocation counts, high-water marks, and
//! cumulative allocation totals in per-thread counter shards summed at
//! snapshot time.
//!
//! # Design
//!
//! * **Per-allocation header.** Each block is allocated with a small prefix
//!   recording the tag it was billed to (or a *not counted* sentinel), so a
//!   deallocation always debits the tag that was credited — regardless of
//!   which thread frees the block, what scope is active at free time, or
//!   whether the kill switch has flipped in between. This is what makes the
//!   per-tag live gauges balance exactly (see the proptests in
//!   `tests/balance.rs`).
//! * **Sharded counters.** Each thread owns a registered counter shard it
//!   updates with plain load/store pairs — no lock-prefixed read-modify-
//!   write on the allocation hot path, which is what keeps the measured
//!   E16 `mem_overhead_pct` within the ≤2% budget. [`snapshot`] sums the
//!   shards (plus a cold fallback bank used only while a shard is being
//!   constructed): exact once writer threads are quiescent, approximate
//!   while they run. High-water marks sum per-thread peaks — an upper
//!   bound on the true process peak, exact for single-threaded workloads.
//! * **Kill switch.** [`set_enabled`]`(false)` stops counter updates (new
//!   blocks are stamped *not counted*); headers are still written so frees
//!   of blocks allocated while enabled stay correct. Same discipline as the
//!   runtime's `metrics::set_enabled`.
//! * **Feature gate.** Everything above only exists with the `count`
//!   feature (the runtime's `metrics` feature enables it). Without it,
//!   [`scope`] returns a zero-sized guard, [`snapshot`] returns an empty
//!   report, and no unsafe code is compiled — `--no-default-features`
//!   builds carry literally zero accounting cost.
//! * **Process-global counters.** Gauges aggregate over every runtime in
//!   the process (the allocator is global); per-runtime attribution would
//!   need a scope per runtime id and is out of scope here.
//!
//! Allocations made outside any scope — user closures, test harness,
//! formatting machinery — land on [`Tag::Untagged`]; a large untagged share
//! in a report means the workload itself, not the runtime, owns the bytes.

#![cfg_attr(not(feature = "count"), forbid(unsafe_code))]
#![warn(missing_docs)]

/// Subsystem a block of memory is billed to.
///
/// The taxonomy mirrors the crate layout: each tag names one allocation
/// domain that DESIGN.md's "Memory accounting" section documents. Discriminants
/// are stable (they index the counter arrays and appear in snapshots by
/// name, never by number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Tag {
    /// Dependency-graph adjacency + the runtime's SoA node columns.
    GraphCore = 0,
    /// Boxed values: the value slab, write boxes, executor results.
    ValueSlab = 1,
    /// Memo tables: per-memo argument→entry maps and memo closures.
    Memo = 2,
    /// Dirty sets and height-bucketed propagation queues.
    Queues = 3,
    /// Trace ring buffers, JSONL sinks, event rendering.
    Trace = 4,
    /// Metrics snapshots, histogram rendering, exposition strings.
    Metrics = 5,
    /// Level-parallel executor pool: worker stacks, job boxes.
    ExecPool = 6,
    /// Session pool: shard queues, tenant tables, work envelopes.
    SessionPool = 7,
    /// Substrate overlays: sheet formula/cell maps, tree arenas, AG trees.
    Substrate = 8,
    /// No scope active on the allocating thread (user/harness memory).
    Untagged = 9,
}

/// Number of tags (length of the counter arrays).
pub const TAG_COUNT: usize = 10;

/// Every tag, in discriminant order (snapshot/report order).
pub const ALL_TAGS: [Tag; TAG_COUNT] = [
    Tag::GraphCore,
    Tag::ValueSlab,
    Tag::Memo,
    Tag::Queues,
    Tag::Trace,
    Tag::Metrics,
    Tag::ExecPool,
    Tag::SessionPool,
    Tag::Substrate,
    Tag::Untagged,
];

impl Tag {
    /// Stable snake_case name used in snapshots, Prometheus labels, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Tag::GraphCore => "graph_core",
            Tag::ValueSlab => "value_slab",
            Tag::Memo => "memo",
            Tag::Queues => "queues",
            Tag::Trace => "trace",
            Tag::Metrics => "metrics",
            Tag::ExecPool => "exec_pool",
            Tag::SessionPool => "session_pool",
            Tag::Substrate => "substrate",
            Tag::Untagged => "untagged",
        }
    }
}

/// Point-in-time accounting for one tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagStats {
    /// Stable tag name (see [`Tag::name`]).
    pub tag: &'static str,
    /// Bytes currently allocated under this tag.
    pub live_bytes: u64,
    /// Blocks currently allocated under this tag.
    pub live_allocs: u64,
    /// High-water mark of `live_bytes` since process start. Summed from
    /// per-thread peaks: an upper bound on the true process peak, exact
    /// when one thread does the allocating.
    pub hwm_bytes: u64,
    /// Cumulative allocations billed to this tag since process start.
    pub total_allocs: u64,
}

/// Per-tag accounting report; empty when the `count` feature is off or the
/// tracking allocator is not installed as the binary's `#[global_allocator]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemSnapshot {
    /// One entry per [`Tag`], in [`ALL_TAGS`] order.
    pub tags: Vec<TagStats>,
}

impl MemSnapshot {
    /// True when no accounting data is present (feature off, or allocator
    /// not installed so every counter is zero).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty() || self.tags.iter().all(|t| t.total_allocs == 0)
    }

    /// Looks up one tag's stats by stable name.
    pub fn get(&self, name: &str) -> Option<&TagStats> {
        self.tags.iter().find(|t| t.tag == name)
    }

    /// Sum of live bytes across all tags.
    pub fn live_bytes_total(&self) -> u64 {
        self.tags.iter().map(|t| t.live_bytes).sum()
    }

    /// Merges another snapshot of the *same process* taken at a different
    /// time: counters are process-global gauges, so merge takes the
    /// pointwise max (never the sum, which would double-count).
    pub fn merge_max(&mut self, other: &MemSnapshot) {
        if self.tags.is_empty() {
            self.tags = other.tags.clone();
            return;
        }
        for (a, b) in self.tags.iter_mut().zip(&other.tags) {
            a.live_bytes = a.live_bytes.max(b.live_bytes);
            a.live_allocs = a.live_allocs.max(b.live_allocs);
            a.hwm_bytes = a.hwm_bytes.max(b.hwm_bytes);
            a.total_allocs = a.total_allocs.max(b.total_allocs);
        }
    }
}

#[cfg(feature = "count")]
mod imp {
    use super::{MemSnapshot, Tag, TagStats, ALL_TAGS, TAG_COUNT};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
    use std::sync::Mutex;

    // `AtomicU64`/`AtomicI64` cannot be copied, so the const items work
    // around array-repeat initialization.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_U: AtomicU64 = AtomicU64::new(0);
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_I: AtomicI64 = AtomicI64::new(0);

    // Fallback counters (lock-prefixed RMW, cold): only touched in the
    // short window while a thread's slab is being constructed, where the
    // construction's own allocations would otherwise recurse forever.
    static BASE_LIVE_BYTES: [AtomicI64; TAG_COUNT] = [ZERO_I; TAG_COUNT];
    static BASE_LIVE_ALLOCS: [AtomicI64; TAG_COUNT] = [ZERO_I; TAG_COUNT];
    static BASE_HWM_BYTES: [AtomicI64; TAG_COUNT] = [ZERO_I; TAG_COUNT];
    static BASE_TOTAL_ALLOCS: [AtomicU64; TAG_COUNT] = [ZERO_U; TAG_COUNT];

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Per-thread counter shard. Written only by its owning thread with
    /// plain load/store pairs (no lock-prefixed RMW — this is what keeps
    /// the E16 `mem_overhead_pct` within budget); read by [`snapshot`] on
    /// any thread via the registry. Atomics make the cross-thread reads
    /// defined; single-writer discipline makes them accurate.
    struct ThreadSlab {
        live_bytes: [AtomicI64; TAG_COUNT],
        live_allocs: [AtomicI64; TAG_COUNT],
        /// Peak of this thread's *own* `live_bytes` contribution; the
        /// snapshot sums peaks across threads, an upper bound on the true
        /// process peak (exact when one thread does the allocating).
        hwm_bytes: [AtomicI64; TAG_COUNT],
        total_allocs: [AtomicU64; TAG_COUNT],
    }

    impl ThreadSlab {
        const fn new() -> Self {
            ThreadSlab {
                live_bytes: [ZERO_I; TAG_COUNT],
                live_allocs: [ZERO_I; TAG_COUNT],
                hwm_bytes: [ZERO_I; TAG_COUNT],
                total_allocs: [ZERO_U; TAG_COUNT],
            }
        }

        /// Owner-thread-only: bill a fresh block.
        #[inline]
        fn credit(&self, tag: usize, size: usize) {
            let live = self.live_bytes[tag].load(Relaxed) + size as i64;
            self.live_bytes[tag].store(live, Relaxed);
            if live > self.hwm_bytes[tag].load(Relaxed) {
                self.hwm_bytes[tag].store(live, Relaxed);
            }
            let allocs = self.live_allocs[tag].load(Relaxed);
            self.live_allocs[tag].store(allocs + 1, Relaxed);
            let total = self.total_allocs[tag].load(Relaxed);
            self.total_allocs[tag].store(total + 1, Relaxed);
        }

        /// Owner-thread-only: release a block (may drive this shard's
        /// counters negative when it frees blocks another thread credited;
        /// the snapshot sum stays balanced).
        #[inline]
        fn debit(&self, tag: usize, size: usize) {
            let live = self.live_bytes[tag].load(Relaxed);
            self.live_bytes[tag].store(live - size as i64, Relaxed);
            let allocs = self.live_allocs[tag].load(Relaxed);
            self.live_allocs[tag].store(allocs - 1, Relaxed);
        }

        /// Owner-thread-only: rebill a realloc size delta.
        #[inline]
        fn adjust(&self, tag: usize, delta: i64) {
            let live = self.live_bytes[tag].load(Relaxed) + delta;
            self.live_bytes[tag].store(live, Relaxed);
            if live > self.hwm_bytes[tag].load(Relaxed) {
                self.hwm_bytes[tag].store(live, Relaxed);
            }
        }
    }

    /// Every thread's slab, alive for the whole process (slabs are leaked
    /// on purpose — ~320 bytes per thread ever created — so counts from
    /// exited threads keep contributing to the sums; no TLS destructor
    /// means no allocator re-entry during thread teardown).
    static REGISTRY: Mutex<Vec<&'static ThreadSlab>> = Mutex::new(Vec::new());

    /// `TlsState::slab` sentinel: no slab yet.
    const SLAB_UNINIT: usize = 0;
    /// `TlsState::slab` sentinel: slab construction in progress on this
    /// thread — its own allocations must take the base-counter fallback.
    const SLAB_PENDING: usize = 1;

    struct TlsState {
        tag: Cell<u8>,
        slab: Cell<usize>,
    }

    thread_local! {
        // Const-initialized, no Drop: no lazy-init allocation and no
        // destructor registration, so reading it from inside the allocator
        // cannot recurse (same pattern as the exec pool's WORKER_IDENTITY).
        static TLS: TlsState = const {
            TlsState {
                tag: Cell::new(Tag::Untagged as u8),
                slab: Cell::new(SLAB_UNINIT),
            }
        };
    }

    /// This thread's slab, constructing and registering it on first use.
    /// `None` only during that construction (the recursion guard).
    #[inline]
    fn slab(tls: &TlsState) -> Option<&'static ThreadSlab> {
        match tls.slab.get() {
            SLAB_PENDING => None,
            SLAB_UNINIT => {
                tls.slab.set(SLAB_PENDING);
                let slab: &'static ThreadSlab = Box::leak(Box::new(ThreadSlab::new()));
                REGISTRY
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(slab);
                tls.slab.set(slab as *const ThreadSlab as usize);
                Some(slab)
            }
            p => Some(unsafe { &*(p as *const ThreadSlab) }),
        }
    }

    /// Cold fallback: credit straight to the shared base counters.
    #[cold]
    fn credit_base(tag: usize, size: usize) {
        let now = BASE_LIVE_BYTES[tag].fetch_add(size as i64, Relaxed) + size as i64;
        BASE_HWM_BYTES[tag].fetch_max(now, Relaxed);
        BASE_LIVE_ALLOCS[tag].fetch_add(1, Relaxed);
        BASE_TOTAL_ALLOCS[tag].fetch_add(1, Relaxed);
    }

    /// Cold fallback: debit straight to the shared base counters.
    #[cold]
    fn debit_base(tag: usize, size: usize) {
        BASE_LIVE_BYTES[tag].fetch_sub(size as i64, Relaxed);
        BASE_LIVE_ALLOCS[tag].fetch_sub(1, Relaxed);
    }

    /// Header word stamped on blocks allocated while accounting is disabled.
    const NOT_COUNTED: usize = usize::MAX;

    /// Enables or disables counter updates. Headers are still written while
    /// disabled (as `NOT_COUNTED`), so blocks allocated under either setting
    /// deallocate correctly. Process-global; used by the E16 overhead arm.
    pub fn set_enabled(enabled: bool) {
        ENABLED.store(enabled, Relaxed);
    }

    /// True when allocations are currently being billed to tags.
    pub fn enabled() -> bool {
        ENABLED.load(Relaxed)
    }

    /// RAII guard restoring the previous thread-local tag on drop.
    #[must_use = "the tag scope ends when the guard drops"]
    pub struct ScopeGuard {
        prev: u8,
    }

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            let _ = TLS.try_with(|t| t.tag.set(self.prev));
        }
    }

    /// Bills allocations on this thread to `tag` until the guard drops;
    /// nests (the previous tag is restored, not cleared). Guards restore by
    /// swap, so they must drop in LIFO order — stack them (the natural
    /// `let _g = scope(..)` shape), never collect them into a `Vec` that
    /// drops front-to-back.
    #[inline]
    pub fn scope(tag: Tag) -> ScopeGuard {
        let prev = TLS
            .try_with(|t| t.tag.replace(tag as u8))
            .unwrap_or(Tag::Untagged as u8);
        ScopeGuard { prev }
    }

    /// Snapshot of every tag's counters: base counters plus the sum over
    /// every thread's slab. Exact once writer threads are quiescent (e.g.
    /// joined); relaxed loads make values from a concurrently-allocating
    /// process approximate, but they never drift. `hwm_bytes` sums
    /// per-thread peaks — an upper bound on the true process peak, exact
    /// for single-threaded workloads.
    pub fn snapshot() -> MemSnapshot {
        // Reserve before taking the registry lock: if this is the calling
        // thread's first counted allocation it would register a slab, and
        // slab registration takes the same lock.
        let mut tags = Vec::with_capacity(TAG_COUNT);
        let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        for &t in ALL_TAGS.iter() {
            let i = t as usize;
            let mut live = BASE_LIVE_BYTES[i].load(Relaxed);
            let mut allocs = BASE_LIVE_ALLOCS[i].load(Relaxed);
            let mut hwm = BASE_HWM_BYTES[i].load(Relaxed);
            let mut total = BASE_TOTAL_ALLOCS[i].load(Relaxed);
            for s in registry.iter() {
                live += s.live_bytes[i].load(Relaxed);
                allocs += s.live_allocs[i].load(Relaxed);
                hwm += s.hwm_bytes[i].load(Relaxed);
                total += s.total_allocs[i].load(Relaxed);
            }
            tags.push(TagStats {
                tag: t.name(),
                live_bytes: live.max(0) as u64,
                live_allocs: allocs.max(0) as u64,
                hwm_bytes: hwm.max(0) as u64,
                total_allocs: total,
            });
        }
        MemSnapshot { tags }
    }

    /// Counting allocator. Install in a binary with
    /// `#[global_allocator] static A: TrackingAlloc = TrackingAlloc;`.
    ///
    /// Each block carries a `prefix(layout)`-byte header holding the tag it
    /// was billed to; the user pointer is `base + prefix`, so alignment is
    /// preserved (the prefix is a multiple of the layout's alignment) and
    /// the header is recoverable from the user pointer alone at free time.
    pub struct TrackingAlloc;

    /// Header prefix: at least 16 bytes (≥ `size_of::<usize>()`, and a
    /// multiple of any alignment ≤ 16), growing to the layout's alignment
    /// for over-aligned types so `base + prefix` stays aligned.
    #[inline]
    fn prefix(layout: Layout) -> usize {
        layout.align().max(16)
    }

    /// Full (header-extended) layout for a user layout, or `None` on
    /// overflow. The alignment is raised to the prefix so the header word
    /// (stored in the last `usize` of the prefix) is itself aligned.
    #[inline]
    fn full_layout(layout: Layout) -> Option<Layout> {
        let pad = prefix(layout);
        let size = layout.size().checked_add(pad)?;
        Layout::from_size_align(size, pad).ok()
    }

    /// Bills `size` fresh bytes to the calling thread's current scope tag
    /// and returns that tag for the header stamp.
    #[inline]
    fn credit(size: usize) -> usize {
        match TLS.try_with(|tls| {
            let t = tls.tag.get() as usize;
            match slab(tls) {
                Some(s) => s.credit(t, size),
                None => credit_base(t, size),
            }
            t
        }) {
            Ok(t) => t,
            Err(_) => {
                let t = Tag::Untagged as usize;
                credit_base(t, size);
                t
            }
        }
    }

    /// Debits `size` bytes from `tag` on the calling thread's shard.
    #[inline]
    fn debit(tag: usize, size: usize) {
        let done = TLS
            .try_with(|tls| match slab(tls) {
                Some(s) => {
                    s.debit(tag, size);
                    true
                }
                None => false,
            })
            .unwrap_or(false);
        if !done {
            debit_base(tag, size);
        }
    }

    /// Stamps the header and updates counters for a fresh block at `base`.
    ///
    /// # Safety
    /// `base` must point to at least `pad` writable bytes.
    #[inline]
    unsafe fn stamp(base: *mut u8, pad: usize, size: usize) {
        let tag = if ENABLED.load(Relaxed) {
            credit(size)
        } else {
            NOT_COUNTED
        };
        // The header lives in the last word of the prefix; the prefix (and
        // the base pointer) are ≥ 16-aligned, so this write is aligned.
        (base.add(pad - std::mem::size_of::<usize>()) as *mut usize).write(tag);
    }

    unsafe impl GlobalAlloc for TrackingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let Some(full) = full_layout(layout) else {
                return std::ptr::null_mut();
            };
            let base = System.alloc(full);
            if base.is_null() {
                return base;
            }
            let pad = prefix(layout);
            stamp(base, pad, layout.size());
            base.add(pad)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let Some(full) = full_layout(layout) else {
                return std::ptr::null_mut();
            };
            let base = System.alloc_zeroed(full);
            if base.is_null() {
                return base;
            }
            let pad = prefix(layout);
            stamp(base, pad, layout.size());
            base.add(pad)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            let pad = prefix(layout);
            let base = ptr.sub(pad);
            let tag = (base.add(pad - std::mem::size_of::<usize>()) as *const usize).read();
            if tag != NOT_COUNTED {
                debit(tag, layout.size());
            }
            // full_layout succeeded at alloc time, so it succeeds here too.
            let full = Layout::from_size_align_unchecked(layout.size() + pad, pad);
            System.dealloc(base, full);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // Same alignment → same prefix; grow/shrink the full block in
            // place when the system allocator can, keeping the header (the
            // prefix is within the preserved bytes of both sizes).
            let pad = prefix(layout);
            let base = ptr.sub(pad);
            let Some(full_new_size) = new_size.checked_add(pad) else {
                return std::ptr::null_mut();
            };
            let full_old = Layout::from_size_align_unchecked(layout.size() + pad, pad);
            let new_base = System.realloc(base, full_old, full_new_size);
            if new_base.is_null() {
                return new_base;
            }
            let hdr = new_base.add(pad - std::mem::size_of::<usize>()) as *const usize;
            let tag = hdr.read();
            if tag != NOT_COUNTED {
                // Rebill the size delta to the tag the block was credited
                // to (not the current scope), so the eventual dealloc —
                // which debits `new_size` — balances.
                let delta = new_size as i64 - layout.size() as i64;
                let done = TLS
                    .try_with(|tls| match slab(tls) {
                        Some(s) => {
                            s.adjust(tag, delta);
                            true
                        }
                        None => false,
                    })
                    .unwrap_or(false);
                if !done {
                    let now = BASE_LIVE_BYTES[tag].fetch_add(delta, Relaxed) + delta;
                    BASE_HWM_BYTES[tag].fetch_max(now, Relaxed);
                }
            }
            new_base.add(pad)
        }
    }
}

#[cfg(feature = "count")]
pub use imp::{enabled, scope, set_enabled, snapshot, ScopeGuard, TrackingAlloc};

#[cfg(not(feature = "count"))]
mod noop {
    use super::{MemSnapshot, Tag};

    /// Zero-sized no-op guard (the `count` feature is off).
    #[must_use = "the tag scope ends when the guard drops"]
    pub struct ScopeGuard;

    /// No-op: accounting is compiled out.
    #[inline(always)]
    pub fn scope(_tag: Tag) -> ScopeGuard {
        ScopeGuard
    }

    /// No-op: accounting is compiled out.
    #[inline(always)]
    pub fn set_enabled(_enabled: bool) {}

    /// Always false: accounting is compiled out.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Always empty: accounting is compiled out.
    #[inline(always)]
    pub fn snapshot() -> MemSnapshot {
        MemSnapshot::default()
    }
}

#[cfg(not(feature = "count"))]
pub use noop::{enabled, scope, set_enabled, snapshot, ScopeGuard};

/// Runs `f` with allocations billed to `tag` (sugar over [`scope`]).
#[inline]
pub fn with<T>(tag: Tag, f: impl FnOnce() -> T) -> T {
    let _guard = scope(tag);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_names_are_stable_and_distinct() {
        let names: Vec<&str> = ALL_TAGS.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), TAG_COUNT);
        for (i, n) in names.iter().enumerate() {
            assert!(!n.is_empty());
            assert!(!names[..i].contains(n), "duplicate tag name {n}");
        }
        assert_eq!(Tag::GraphCore.name(), "graph_core");
        assert_eq!(Tag::Untagged.name(), "untagged");
    }

    #[test]
    fn discriminants_match_all_tags_order() {
        for (i, &t) in ALL_TAGS.iter().enumerate() {
            assert_eq!(t as usize, i);
        }
    }

    #[test]
    fn scope_guard_compiles_in_both_configurations() {
        // Behavior is exercised in tests/balance.rs (count on); here we
        // only pin the API shape shared by both configurations.
        let _g = scope(Tag::GraphCore);
        let v = with(Tag::ValueSlab, || vec![1u8, 2, 3]);
        assert_eq!(v.len(), 3);
        drop(_g);
    }

    #[test]
    fn merge_max_is_pointwise() {
        let mut a = MemSnapshot {
            tags: vec![TagStats {
                tag: "graph_core",
                live_bytes: 10,
                live_allocs: 1,
                hwm_bytes: 20,
                total_allocs: 5,
            }],
        };
        let b = MemSnapshot {
            tags: vec![TagStats {
                tag: "graph_core",
                live_bytes: 7,
                live_allocs: 3,
                hwm_bytes: 15,
                total_allocs: 9,
            }],
        };
        a.merge_max(&b);
        assert_eq!(a.tags[0].live_bytes, 10);
        assert_eq!(a.tags[0].live_allocs, 3);
        assert_eq!(a.tags[0].hwm_bytes, 20);
        assert_eq!(a.tags[0].total_allocs, 9);

        let mut empty = MemSnapshot::default();
        empty.merge_max(&b);
        assert_eq!(empty.tags, b.tags);
    }

    #[test]
    fn snapshot_shape_matches_feature() {
        let s = snapshot();
        if cfg!(feature = "count") {
            assert_eq!(s.tags.len(), TAG_COUNT);
        } else {
            assert!(s.tags.is_empty());
            assert!(s.is_empty());
        }
    }
}
