//! Accounting-balance properties for the tagged counting allocator.
//!
//! Every test measures *deltas* around its own allocations and serializes
//! on a shared mutex: the counters are process-global and the test harness
//! runs tests on multiple threads, so absolute values are meaningless but
//! deltas under the lock are exact (other test threads in this binary only
//! allocate Untagged, and we never assert on Untagged).
#![cfg(feature = "count")]

use alphonse_mem::{scope, set_enabled, snapshot, with, Tag, ALL_TAGS};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

#[global_allocator]
static ALLOC: alphonse_mem::TrackingAlloc = alphonse_mem::TrackingAlloc;

/// Serializes tests that assert on tagged counter deltas.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Live (bytes, allocs) per tag, excluding Untagged (polluted by the
/// concurrent test harness).
fn live() -> Vec<(u64, u64)> {
    snapshot()
        .tags
        .iter()
        .filter(|t| t.tag != "untagged")
        .map(|t| (t.live_bytes, t.live_allocs))
        .collect()
}

#[test]
fn alloc_free_returns_tag_to_baseline() {
    let _l = lock();
    let before = live();
    {
        let _g = scope(Tag::GraphCore);
        let v: Vec<u64> = (0..1000).collect();
        assert_eq!(v.len(), 1000);
        let mid = live();
        let gc = Tag::GraphCore as usize;
        assert!(
            mid[gc].0 >= before[gc].0 + 8000,
            "graph_core live bytes did not grow: {} -> {}",
            before[gc].0,
            mid[gc].0
        );
    }
    assert_eq!(live(), before, "tags did not return to baseline");
}

#[test]
fn hwm_is_monotone_and_covers_peak() {
    let _l = lock();
    let peak: usize = 64 * 1024;
    let hwm_before = snapshot().get("queues").unwrap().hwm_bytes;
    with(Tag::Queues, || {
        let v = vec![0u8; peak];
        std::hint::black_box(&v);
    });
    let after = snapshot().get("queues").unwrap().hwm_bytes;
    assert!(
        after >= hwm_before.max(peak as u64),
        "hwm {after} below peak {peak}"
    );
}

#[test]
fn disabled_allocations_are_not_counted_but_free_safely() {
    let _l = lock();
    let before = live();
    set_enabled(false);
    let v: Vec<u8>;
    {
        let _g = scope(Tag::Memo);
        v = vec![7u8; 4096];
    }
    set_enabled(true);
    assert_eq!(live(), before, "disabled allocation was counted");
    drop(v); // freed after re-enable: header says NOT_COUNTED, no debit
    assert_eq!(live(), before, "free of uncounted block changed counters");
}

#[test]
fn enabled_allocation_freed_while_disabled_still_debits() {
    let _l = lock();
    let before = live();
    let v = with(Tag::Trace, || vec![1u8; 2048]);
    set_enabled(false);
    drop(v); // header carries the tag; the debit must not be gated
    set_enabled(true);
    assert_eq!(live(), before, "counted block leaked across kill switch");
}

#[test]
fn realloc_rebills_original_tag() {
    let _l = lock();
    let before = live();
    let mut v: Vec<u8> = with(Tag::Substrate, || Vec::with_capacity(16));
    // Grow far past the original capacity *outside* the scope: the
    // reallocations must keep billing Substrate (header tag), not Untagged.
    for i in 0..100_000u32 {
        v.push(i as u8);
    }
    let sub = Tag::Substrate as usize;
    let mid = live();
    assert!(
        mid[sub].0 >= before[sub].0 + 100_000,
        "realloc did not rebill substrate: {} -> {}",
        before[sub].0,
        mid[sub].0
    );
    drop(v);
    assert_eq!(live(), before, "realloc unbalanced the tag");
}

#[test]
fn cross_thread_free_debits_allocating_tag() {
    let _l = lock();
    let before = live();
    let v = with(Tag::ExecPool, || vec![0u64; 512]);
    std::thread::spawn(move || drop(v)).join().unwrap();
    assert_eq!(live(), before, "cross-thread free lost the tag");
}

#[test]
fn overaligned_allocations_balance() {
    let _l = lock();
    #[repr(align(64))]
    struct Cacheline([u8; 64]);
    #[repr(align(256))]
    struct Page([u8; 256]);
    let before = live();
    {
        let _g = scope(Tag::Metrics);
        let a = Box::new(Cacheline([1; 64]));
        let b = Box::new(Page([2; 256]));
        assert_eq!(a.0[0], 1);
        assert_eq!(b.0[0], 2);
        assert_eq!((&*a as *const Cacheline as usize) % 64, 0);
        assert_eq!((&*b as *const Page as usize) % 256, 0);
    }
    assert_eq!(live(), before, "over-aligned blocks unbalanced");
}

fn tag_strategy() -> impl Strategy<Value = Tag> {
    (0..ALL_TAGS.len()).prop_map(|i| ALL_TAGS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary nested scopes with interleaved allocations, drops in
    /// reverse order: every non-Untagged tag returns exactly to its
    /// pre-scope live count.
    #[test]
    fn nested_scopes_balance(ops in proptest::collection::vec((tag_strategy(), 1usize..4096), 1..12)) {
        let _l = lock();
        let before = live();
        {
            let mut guards = Vec::new();
            let mut blocks: Vec<Vec<u8>> = Vec::new();
            for (tag, size) in &ops {
                guards.push(scope(*tag));
                blocks.push(vec![0u8; *size]);
            }
            // Drop some blocks while scopes are still nested (free-time
            // scope must not matter), the rest after all guards unwind.
            // Guards restore-by-swap, so they must unwind LIFO.
            let half = blocks.len() / 2;
            blocks.truncate(half);
            while let Some(g) = guards.pop() {
                drop(g);
            }
            drop(blocks);
        }
        prop_assert_eq!(live(), before);
    }

    /// Blocks allocated under a tag on one thread and freed on another —
    /// possibly inside a *different* scope — still debit the allocating tag.
    #[test]
    fn cross_thread_scoped_frees_balance(
        sizes in proptest::collection::vec(1usize..8192, 1..8),
        alloc_tag in tag_strategy(),
        free_tag in tag_strategy(),
    ) {
        let _l = lock();
        let before = live();
        let blocks: Vec<Vec<u8>> = sizes
            .iter()
            .map(|&s| with(alloc_tag, || vec![0u8; s]))
            .collect();
        std::thread::spawn(move || {
            let _g = scope(free_tag);
            drop(blocks);
        })
        .join()
        .unwrap();
        prop_assert_eq!(live(), before);
    }

    /// Toggling the kill switch mid-lifetime never unbalances a tag: blocks
    /// are debited iff they were credited, per the header.
    #[test]
    fn kill_switch_interleaving_balances(
        plan in proptest::collection::vec((tag_strategy(), any::<bool>(), 1usize..2048), 1..10)
    ) {
        let _l = lock();
        let before = live();
        let mut held = Vec::new();
        for (tag, on, size) in &plan {
            set_enabled(*on);
            held.push(with(*tag, || vec![0u8; *size]));
        }
        for (i, block) in held.into_iter().enumerate() {
            set_enabled(i % 2 == 0);
            drop(block);
        }
        set_enabled(true);
        prop_assert_eq!(live(), before);
    }
}
