//! Whole-program static dependency graph.
//!
//! The runtime builds its dependence graph *online*: every checked read and
//! every tracked write, executed while an incremental frame records, adds an
//! edge (Section 4.1 of the paper). This module computes the compile-time
//! shadow of that graph by abstract interpretation over the HIR: abstract
//! locations (globals by index, fields by flattened offset, all arrays as
//! one class) and incremental procedures become nodes, and three edge kinds
//! over-approximate everything the runtime can ever record:
//!
//! * **read** `loc -> proc` — some execution of the procedure's *checked
//!   recording closure* (itself plus non-incremental callees reached only
//!   through calls outside `(*UNCHECKED*)` regions) may perform a checked
//!   read of the location. At runtime that read adds `loc -> instance`.
//! * **write** `proc -> loc` — some execution of the procedure's *full
//!   plain closure* (all non-incremental callees, regions included) may
//!   write the location. At runtime a tracked write adds `loc -> writer`
//!   (the writer becomes a consumer the location can re-dirty), so for
//!   coverage purposes a write edge witnesses the same dynamic edge as a
//!   read edge — the flow orientation `proc -> loc` is kept because it is
//!   what makes store-mediated cycles visible.
//! * **call** `callee -> caller` — the caller's checked closure reaches a
//!   call of the incremental callee; at runtime the callee's settled
//!   instance becomes a dependence of the caller's frame.
//!
//! Suppressed activity (reads under `(*UNCHECKED*)`, calls occurring only
//! inside regions) records nothing at runtime and is deliberately excluded
//! from read/call edges, while writes are *never* suppressed-excluded:
//! omitting a dynamic edge is unsound for cross-validation, including an
//! impossible one merely loses precision.
//!
//! Two condensations of the edge set are computed ([`alphonse_graph::scc`]):
//!
//! * the **flow graph** (edges as stated) reveals store-mediated cycle
//!   candidates — `P` writes a location that `Q` reads while `Q` feeds `P`.
//!   The runtime never sees such a cycle as a graph cycle (locations have
//!   no in-edges online), it sees non-terminating re-dirtying instead, so
//!   the static check is the only early warning (lint W06).
//! * the **dependency orientation** (write edges flipped to `loc -> proc`)
//!   is acyclic through locations, exactly like the online graph, and its
//!   condensation heights give every procedure a static stratum: a lower
//!   bound on the height of any instance of that procedure. The
//!   interpreter seeds new instances with these heights so the online
//!   height-adjustment pass has less work to do.
//!
//! The graph serializes to DOT and to a versioned JSON document
//! (`alphonse-staticgraph` version 1) whose node labels match the labels
//! the traced runtime attaches to its nodes (`g:<name>`, `f:<offset>`,
//! `arr`, and procedure names), so `alphonse-trace check-static` can
//! verify dynamic ⊆ static edge coverage on any recorded trace.

use crate::diag::json_str;
use crate::effects::{describe_loc, EffectTable, Loc};
use crate::hir::{IncrKind, ProcId, Program};
use alphonse_graph::scc::{condense, Condensation};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What a static-graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An abstract storage location.
    Loc(Loc),
    /// An incremental (cached or maintained) procedure — the abstraction
    /// of all its runtime instances.
    Proc(ProcId),
}

/// One node of the static graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// What the node abstracts.
    pub kind: NodeKind,
    /// Cross-validation label, matching the runtime's trace labels:
    /// `g:<name>` for globals, `f:<offset>` for fields, `arr` for arrays,
    /// and the procedure name for incremental procedures.
    pub label: String,
}

/// Edge kinds, in the natural (flow) orientation described in the module
/// docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// `loc -> proc`: the procedure's checked closure may read the location.
    Read,
    /// `proc -> loc`: the procedure's plain closure may write the location.
    Write,
    /// `callee -> caller`: the caller's checked closure may request the
    /// callee's instance.
    Call,
}

impl EdgeKind {
    /// Stable lowercase name used in JSON and DOT output.
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeKind::Read => "read",
            EdgeKind::Write => "write",
            EdgeKind::Call => "call",
        }
    }
}

/// One edge of the static graph, by node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Flow-orientation kind.
    pub kind: EdgeKind,
}

/// A strongly-connected component of the flow graph that contains a cycle
/// — the static candidate for runtime non-termination by re-dirtying.
#[derive(Debug, Clone)]
pub struct CycleCandidate {
    /// Member node indices, in deterministic order.
    pub nodes: Vec<usize>,
    /// `true` if the component contains at least one location node (the
    /// cycle is store-mediated, not a plain recursive call knot).
    pub through_store: bool,
    /// Cached procedures owning an intra-component write edge. Maintained
    /// procedures are exempt by design — the paper's Algorithm 11
    /// self-stabilizes an AVL tree by writing fields its own closure
    /// reads.
    pub cached_writers: Vec<ProcId>,
}

/// The computed static dependency graph of one program.
#[derive(Debug, Clone)]
pub struct StaticGraph {
    /// Nodes: locations first (globals ascending, fields ascending,
    /// arrays), then incremental procedures by id.
    pub nodes: Vec<Node>,
    /// Deduplicated edges in flow orientation, deterministic order.
    pub edges: Vec<Edge>,
    /// Location → node index.
    pub loc_node: BTreeMap<Loc, usize>,
    /// Incremental procedure → node index.
    pub proc_node: BTreeMap<ProcId, usize>,
    /// Per-node static height in the dependency orientation (write edges
    /// flipped). Locations are always 0, like the online graph.
    pub heights: Vec<u32>,
    /// Nodes grouped by height: `strata[h]` lists node indices at height
    /// `h`.
    pub strata: Vec<Vec<usize>>,
    /// Cyclic flow-graph components.
    pub cycles: Vec<CycleCandidate>,
}

/// Builds the static graph from a resolved program and its effect table.
pub fn build(program: &Program, effects: &EffectTable) -> StaticGraph {
    let n_procs = program.procs.len();
    let incremental: Vec<ProcId> = (0..n_procs)
        .filter(|&p| program.procs[p].incremental.is_some())
        .collect();

    // Per incremental root: reads of the checked recording closure,
    // incremental callees requested from it, writes of the full closure.
    let mut reads: BTreeMap<ProcId, BTreeSet<Loc>> = BTreeMap::new();
    let mut calls: BTreeMap<ProcId, BTreeSet<ProcId>> = BTreeMap::new();
    let mut writes: BTreeMap<ProcId, BTreeSet<Loc>> = BTreeMap::new();
    for &p in &incremental {
        let (r, c) = checked_closure(program, effects, p);
        reads.insert(p, r);
        calls.insert(p, c);
        writes.insert(p, full_closure_writes(program, effects, p));
    }

    // Node table: every location incident to at least one edge, then the
    // incremental procedures.
    let mut locs: BTreeSet<Loc> = BTreeSet::new();
    for set in reads.values().chain(writes.values()) {
        locs.extend(set.iter().copied());
    }
    let mut nodes = Vec::new();
    let mut loc_node = BTreeMap::new();
    for &loc in &locs {
        loc_node.insert(loc, nodes.len());
        nodes.push(Node {
            kind: NodeKind::Loc(loc),
            label: loc_label(program, loc),
        });
    }
    let mut proc_node = BTreeMap::new();
    for &p in &incremental {
        proc_node.insert(p, nodes.len());
        nodes.push(Node {
            kind: NodeKind::Proc(p),
            label: program.procs[p].name.clone(),
        });
    }

    // Deduplicated flow edges in deterministic order.
    let mut edge_set: BTreeSet<(usize, usize, EdgeKind)> = BTreeSet::new();
    for &p in &incremental {
        let pn = proc_node[&p];
        for &loc in &reads[&p] {
            edge_set.insert((loc_node[&loc], pn, EdgeKind::Read));
        }
        for &loc in &writes[&p] {
            edge_set.insert((pn, loc_node[&loc], EdgeKind::Write));
        }
        for &c in &calls[&p] {
            edge_set.insert((proc_node[&c], pn, EdgeKind::Call));
        }
    }
    let edges: Vec<Edge> = edge_set
        .iter()
        .map(|&(from, to, kind)| Edge { from, to, kind })
        .collect();

    // Flow condensation: store-mediated cycle candidates.
    let flow = condense_edges(nodes.len(), &edges, false);
    let mut cycles = Vec::new();
    for c in 0..flow.len() {
        if !flow.is_cyclic(c) {
            continue;
        }
        let members: Vec<usize> = {
            let mut m = flow.components[c].clone();
            m.sort_unstable();
            m
        };
        let through_store = members
            .iter()
            .any(|&v| matches!(nodes[v].kind, NodeKind::Loc(_)));
        let mut cached_writers: Vec<ProcId> = edges
            .iter()
            .filter(|e| {
                e.kind == EdgeKind::Write && flow.comp_of(e.from) == c && flow.comp_of(e.to) == c
            })
            .filter_map(|e| match nodes[e.from].kind {
                NodeKind::Proc(p)
                    if matches!(program.procs[p].incremental, Some((IncrKind::Cached, _))) =>
                {
                    Some(p)
                }
                _ => None,
            })
            .collect();
        cached_writers.sort_unstable();
        cached_writers.dedup();
        cycles.push(CycleCandidate {
            nodes: members,
            through_store,
            cached_writers,
        });
    }

    // Dependency orientation (writes flipped): strata and heights.
    let dep = condense_edges(nodes.len(), &edges, true);
    let comp_heights = dep.heights(|v, f| {
        for e in &edges {
            let (from, to) = if e.kind == EdgeKind::Write {
                (e.to, e.from) // loc -> writer, like the online graph
            } else {
                (e.from, e.to)
            };
            if from == v {
                f(to);
            }
        }
    });
    let heights: Vec<u32> = (0..nodes.len())
        .map(|v| comp_heights[dep.comp_of(v)])
        .collect();
    let mut strata: Vec<Vec<usize>> =
        vec![Vec::new(); heights.iter().max().map_or(0, |&h| h as usize + 1)];
    for (v, &h) in heights.iter().enumerate() {
        strata[h as usize].push(v);
    }

    StaticGraph {
        nodes,
        edges,
        loc_node,
        proc_node,
        heights,
        strata,
        cycles,
    }
}

fn condense_edges(n: usize, edges: &[Edge], flip_writes: bool) -> Condensation {
    condense(n, |v, f| {
        for e in edges {
            let (from, to) = if flip_writes && e.kind == EdgeKind::Write {
                (e.to, e.from)
            } else {
                (e.from, e.to)
            };
            if from == v {
                f(to);
            }
        }
    })
}

/// The trace label of an abstract location, matching what the runtime
/// attaches to promoted slots when tracing is on.
pub fn loc_label(program: &Program, loc: Loc) -> String {
    match loc {
        Loc::Global(g) => format!("g:{}", program.globals[g].name),
        Loc::Field(off) => format!("f:{off}"),
        Loc::Arrays => "arr".to_string(),
    }
}

/// Checked recording closure of incremental root `p`: the locations its
/// frame (or the suppression-free frames below it) may read-and-record,
/// and the incremental callees it may request. Traversal follows only
/// calls/dispatches occurring outside `(*UNCHECKED*)` regions and stops at
/// incremental callees (they record on their own frames).
fn checked_closure(
    program: &Program,
    effects: &EffectTable,
    p: ProcId,
) -> (BTreeSet<Loc>, BTreeSet<ProcId>) {
    let mut reads = BTreeSet::new();
    let mut incr_callees = BTreeSet::new();
    let mut seen = BTreeSet::from([p]);
    let mut queue = VecDeque::from([p]);
    while let Some(q) = queue.pop_front() {
        let f = &effects.facts[q];
        reads.extend(f.direct.reads().iter().copied());
        let mut next: BTreeSet<ProcId> = f.checked_calls.clone();
        next.extend(effects.dispatch_targets(f.checked_dispatches.iter()));
        for r in next {
            if program.procs[r].incremental.is_some() {
                incr_callees.insert(r);
            } else if seen.insert(r) {
                queue.push_back(r);
            }
        }
    }
    (reads, incr_callees)
}

/// Writes of the full plain closure of incremental root `p`: every
/// location some non-incremental procedure reachable from `p` (regions
/// included) may write. Incremental callees keep their own writes.
fn full_closure_writes(program: &Program, effects: &EffectTable, p: ProcId) -> BTreeSet<Loc> {
    let mut writes = BTreeSet::new();
    let mut seen = BTreeSet::from([p]);
    let mut queue = VecDeque::from([p]);
    while let Some(q) = queue.pop_front() {
        let f = &effects.facts[q];
        writes.extend(f.direct.writes().iter().copied());
        let mut next: BTreeSet<ProcId> = f.calls.clone();
        next.extend(effects.dispatch_targets(f.dispatches.iter()));
        for r in next {
            if program.procs[r].incremental.is_none() && seen.insert(r) {
                queue.push_back(r);
            }
        }
    }
    writes
}

impl StaticGraph {
    /// Static stratum of incremental procedure `p`, if it has a node.
    pub fn proc_height(&self, p: ProcId) -> Option<u32> {
        self.proc_node.get(&p).map(|&v| self.heights[v])
    }

    /// `true` if some incremental closure has a checked read edge from
    /// `loc` — i.e. a write to `loc` can re-dirty somebody.
    pub fn has_read_edge(&self, loc: Loc) -> bool {
        self.loc_node.get(&loc).is_some_and(|&v| {
            self.edges
                .iter()
                .any(|e| e.kind == EdgeKind::Read && e.from == v)
        })
    }

    /// Global indices with a read edge into `p`'s node — the statically
    /// named part of `R(p)` restricted to globals.
    pub fn checked_read_globals(&self, p: ProcId) -> BTreeSet<usize> {
        let Some(&pn) = self.proc_node.get(&p) else {
            return BTreeSet::new();
        };
        self.edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Read && e.to == pn)
            .filter_map(|e| match self.nodes[e.from].kind {
                NodeKind::Loc(Loc::Global(g)) => Some(g),
                _ => None,
            })
            .collect()
    }

    /// Renders the graph as GraphViz DOT. Locations are boxes, procedures
    /// ellipses (maintained ones double-bordered); read edges are solid,
    /// write edges dashed, call edges bold. Nodes are ranked by stratum.
    pub fn to_dot(&self, program: &Program) -> String {
        let mut out = String::from("digraph staticdeps {\n  rankdir=BT;\n");
        for (h, members) in self.strata.iter().enumerate() {
            out.push_str(&format!("  {{ rank=same; /* height {h} */"));
            for &v in members {
                out.push_str(&format!(" {};", dot_id(&self.nodes[v].label)));
            }
            out.push_str(" }\n");
        }
        for node in &self.nodes {
            let attrs = match node.kind {
                NodeKind::Loc(_) => "shape=box".to_string(),
                NodeKind::Proc(p) => match program.procs[p].incremental {
                    Some((IncrKind::Maintained, _)) => "shape=ellipse,peripheries=2",
                    _ => "shape=ellipse,style=bold",
                }
                .to_string(),
            };
            out.push_str(&format!("  {} [{attrs}];\n", dot_id(&node.label)));
        }
        for e in &self.edges {
            let style = match e.kind {
                EdgeKind::Read => "solid",
                EdgeKind::Write => "dashed",
                EdgeKind::Call => "bold",
            };
            out.push_str(&format!(
                "  {} -> {} [style={style},label=\"{}\"];\n",
                dot_id(&self.nodes[e.from].label),
                dot_id(&self.nodes[e.to].label),
                e.kind.as_str()
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Serializes the graph as the versioned `alphonse-staticgraph` JSON
    /// document consumed by `alphonse-trace check-static`.
    pub fn to_json(&self, program: &Program, file: &str) -> String {
        let mut out = String::from("{\"schema\":\"alphonse-staticgraph\",\"version\":1,");
        out.push_str(&format!(
            "\"tool\":{},",
            json_str(concat!("alphonse-check ", env!("CARGO_PKG_VERSION")))
        ));
        out.push_str(&format!("\"file\":{},", json_str(file)));

        out.push_str("\"nodes\":[");
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| match node.kind {
                NodeKind::Loc(loc) => format!(
                    "{{\"id\":{i},\"kind\":\"loc\",\"label\":{},\"desc\":{},\"height\":{}}}",
                    json_str(&node.label),
                    json_str(&describe_loc(program, loc)),
                    self.heights[i]
                ),
                NodeKind::Proc(p) => format!(
                    "{{\"id\":{i},\"kind\":\"proc\",\"label\":{},\"incremental\":{},\"height\":{}}}",
                    json_str(&node.label),
                    json_str(match program.procs[p].incremental {
                        Some((IncrKind::Maintained, _)) => "maintained",
                        _ => "cached",
                    }),
                    self.heights[i]
                ),
            })
            .collect();
        out.push_str(&nodes.join(","));
        out.push_str("],");

        out.push_str("\"edges\":[");
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                format!(
                    "{{\"from\":{},\"to\":{},\"kind\":\"{}\"}}",
                    json_str(&self.nodes[e.from].label),
                    json_str(&self.nodes[e.to].label),
                    e.kind.as_str()
                )
            })
            .collect();
        out.push_str(&edges.join(","));
        out.push_str("],");

        out.push_str("\"strata\":[");
        let strata: Vec<String> = self
            .strata
            .iter()
            .map(|members| {
                let labels: Vec<String> = members
                    .iter()
                    .map(|&v| json_str(&self.nodes[v].label))
                    .collect();
                format!("[{}]", labels.join(","))
            })
            .collect();
        out.push_str(&strata.join(","));
        out.push_str("],");

        out.push_str("\"cycles\":[");
        let cycles: Vec<String> = self
            .cycles
            .iter()
            .map(|c| {
                let members: Vec<String> = c
                    .nodes
                    .iter()
                    .map(|&v| json_str(&self.nodes[v].label))
                    .collect();
                let writers: Vec<String> = c
                    .cached_writers
                    .iter()
                    .map(|&p| json_str(&program.procs[p].name))
                    .collect();
                format!(
                    "{{\"members\":[{}],\"through_store\":{},\"cached_writers\":[{}]}}",
                    members.join(","),
                    c.through_store,
                    writers.join(",")
                )
            })
            .collect();
        out.push_str(&cycles.join(","));
        out.push_str("]}");
        out
    }
}

/// Quotes a label as a DOT node id.
fn dot_id(label: &str) -> String {
    format!("\"{}\"", label.replace('\\', "\\\\").replace('"', "\\\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::infer;
    use crate::parser::parse;
    use crate::resolve::resolve;

    fn graph(src: &str) -> (Program, StaticGraph) {
        let program = resolve(&parse(src).unwrap()).unwrap();
        let effects = infer(&program);
        let g = build(&program, &effects);
        (program, g)
    }

    fn edge_labels(p: &Program, g: &StaticGraph, kind: EdgeKind) -> Vec<(String, String)> {
        let _ = p;
        g.edges
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| (g.nodes[e.from].label.clone(), g.nodes[e.to].label.clone()))
            .collect()
    }

    const DIAMOND: &str = "VAR base, rate : INTEGER;
         (*CACHED*) PROCEDURE Left() : INTEGER = BEGIN RETURN base + rate; END Left;
         (*CACHED*) PROCEDURE Right() : INTEGER = BEGIN RETURN base * 2; END Right;
         (*CACHED*) PROCEDURE Total() : INTEGER = BEGIN RETURN Left() + Right(); END Total;
         PROCEDURE Use() : INTEGER = BEGIN RETURN Total(); END Use;";

    #[test]
    fn diamond_reads_calls_and_strata() {
        let (p, g) = graph(DIAMOND);
        let reads = edge_labels(&p, &g, EdgeKind::Read);
        assert!(reads.contains(&("g:base".into(), "Left".into())));
        assert!(reads.contains(&("g:rate".into(), "Left".into())));
        assert!(reads.contains(&("g:base".into(), "Right".into())));
        let calls = edge_labels(&p, &g, EdgeKind::Call);
        assert!(calls.contains(&("Left".into(), "Total".into())));
        assert!(calls.contains(&("Right".into(), "Total".into())));
        assert!(edge_labels(&p, &g, EdgeKind::Write).is_empty());
        // Strata: locations at 0, Left/Right at 1, Total at 2.
        assert_eq!(g.proc_height(p.proc_by_name["Left"]), Some(1));
        assert_eq!(g.proc_height(p.proc_by_name["Right"]), Some(1));
        assert_eq!(g.proc_height(p.proc_by_name["Total"]), Some(2));
        for (loc, &v) in &g.loc_node {
            assert_eq!(g.heights[v], 0, "location {loc:?} must be a source");
        }
        assert!(g.cycles.is_empty());
    }

    #[test]
    fn unchecked_reads_and_region_calls_record_no_read_edges() {
        let (p, g) = graph(
            "VAR seen, hidden, logged : INTEGER;
             PROCEDURE Peek() : INTEGER = BEGIN logged := 1; RETURN hidden; END Peek;
             (*CACHED*) PROCEDURE F() : INTEGER =
             BEGIN RETURN seen + (*UNCHECKED*) Peek(); END F;
             PROCEDURE Use() : INTEGER = BEGIN RETURN F(); END Use;",
        );
        let reads = edge_labels(&p, &g, EdgeKind::Read);
        assert!(reads.contains(&("g:seen".into(), "F".into())));
        // Peek runs suppressed: its read of `hidden` records nothing…
        assert!(!reads.iter().any(|(from, _)| from == "g:hidden"));
        // …but its write is never suppressed, so the write edge stays.
        let writes = edge_labels(&p, &g, EdgeKind::Write);
        assert!(writes.contains(&("F".into(), "g:logged".into())));
    }

    #[test]
    fn store_cycle_is_flagged_with_cached_writer() {
        let (p, g) = graph(
            "VAR acc : INTEGER;
             (*CACHED*) PROCEDURE Step() : INTEGER =
             BEGIN acc := acc + 1; RETURN acc; END Step;
             PROCEDURE Use() : INTEGER = BEGIN RETURN Step(); END Use;",
        );
        assert_eq!(g.cycles.len(), 1);
        let c = &g.cycles[0];
        assert!(c.through_store);
        assert_eq!(c.cached_writers, vec![p.proc_by_name["Step"]]);
        // The dependency orientation stays acyclic: both nodes get finite
        // heights with the location at 0.
        assert_eq!(g.heights[g.loc_node[&Loc::Global(0)]], 0);
    }

    #[test]
    fn maintained_writers_are_not_cycle_candidates() {
        let (_, g) = graph(
            "TYPE T = OBJECT
                v : INTEGER;
             METHODS
                (*MAINTAINED*) bump() : INTEGER := Bump;
             END;
             PROCEDURE Bump(t : T) : INTEGER =
             BEGIN t.v := t.v + 1; RETURN t.v; END Bump;
             PROCEDURE Use(t : T) : INTEGER = BEGIN RETURN t.bump(); END Use;",
        );
        // Bump both reads and writes field offset 0: a flow cycle exists,
        // but with no cached writer it is the paper's own idiom.
        assert_eq!(g.cycles.len(), 1);
        assert!(g.cycles[0].through_store);
        assert!(g.cycles[0].cached_writers.is_empty());
    }

    #[test]
    fn json_and_dot_are_well_formed() {
        let (p, g) = graph(DIAMOND);
        let json = g.to_json(&p, "diamond.alf");
        assert!(json.starts_with("{\"schema\":\"alphonse-staticgraph\",\"version\":1,"));
        assert!(json.contains("\"label\":\"g:base\""));
        assert!(json.contains("\"kind\":\"call\""));
        assert!(json.contains("\"incremental\":\"cached\""));
        let dot = g.to_dot(&p);
        assert!(dot.starts_with("digraph staticdeps {"));
        assert!(dot.contains("\"g:base\" -> \"Left\" [style=solid,label=\"read\"];"));
        assert!(dot.contains("\"Left\" -> \"Total\" [style=bold,label=\"call\"];"));
    }

    #[test]
    fn helpers_expose_rp_restriction_and_readership() {
        let (p, g) = graph(DIAMOND);
        assert_eq!(
            g.checked_read_globals(p.proc_by_name["Left"]),
            BTreeSet::from([0, 1])
        );
        assert!(g.has_read_edge(Loc::Global(0)));
        assert!(!g.has_read_edge(Loc::Arrays));
    }
}
