//! Runtime values of Alphonse-L.

use std::fmt;
use std::sync::Arc;

/// Identity of a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub(crate) u32);

/// Identity of a heap array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrId(pub(crate) u32);

impl fmt::Display for ArrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr#{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// A first-class Alphonse-L value.
///
/// Values are comparable and hashable: they key the paper's *argument
/// tables* (Section 4.2) and participate in quiescence cutoff comparisons.
/// Object values compare by identity, exactly as Modula-3 reference
/// equality does.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Val {
    /// `INTEGER`
    Int(i64),
    /// `BOOLEAN`
    Bool(bool),
    /// `TEXT`
    Text(Arc<str>),
    /// `NIL`
    Nil,
    /// Reference to a heap object.
    Obj(ObjId),
    /// Reference to a heap array (compares by identity).
    Arr(ArrId),
}

impl Val {
    /// Text helper.
    pub fn text(s: &str) -> Val {
        Val::Text(Arc::from(s))
    }

    /// Extracts an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer (indicates a type-checker bug
    /// or host misuse).
    pub fn as_int(&self) -> i64 {
        match self {
            Val::Int(v) => *v,
            other => panic!("expected INTEGER, found {other}"),
        }
    }

    /// Extracts a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            Val::Bool(v) => *v,
            other => panic!("expected BOOLEAN, found {other}"),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(v) => write!(f, "{v}"),
            Val::Bool(v) => write!(f, "{}", if *v { "TRUE" } else { "FALSE" }),
            Val::Text(s) => write!(f, "{s}"),
            Val::Nil => write!(f, "NIL"),
            Val::Obj(o) => write!(f, "{o}"),
            Val::Arr(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Val::Int(5).to_string(), "5");
        assert_eq!(Val::Bool(true).to_string(), "TRUE");
        assert_eq!(Val::text("hi").to_string(), "hi");
        assert_eq!(Val::Nil.to_string(), "NIL");
        assert_eq!(Val::Obj(ObjId(3)).to_string(), "obj#3");
    }

    #[test]
    fn text_values_compare_by_content() {
        assert_eq!(Val::text("a"), Val::text("a"));
        assert_ne!(Val::text("a"), Val::text("b"));
    }

    #[test]
    fn objects_compare_by_identity() {
        assert_eq!(Val::Obj(ObjId(1)), Val::Obj(ObjId(1)));
        assert_ne!(Val::Obj(ObjId(1)), Val::Obj(ObjId(2)));
    }

    #[test]
    #[should_panic(expected = "expected INTEGER")]
    fn as_int_panics_on_wrong_kind() {
        Val::Nil.as_int();
    }
}
