//! Pretty-printer for Alphonse-L surface syntax.
//!
//! Used to display programs, to round-trip-test the parser, and to render
//! the output of the Section 5 program transformation the way the paper's
//! Algorithm 2 does.

use crate::ast::*;
use crate::token::{Pragma, PragmaStrategy};
use std::fmt::Write;

/// Renders a module as parseable source text.
pub fn unparse(module: &Module) -> String {
    let mut p = Printer::default();
    for d in &module.decls {
        p.decl(d);
    }
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

fn pragma_str(p: &Pragma) -> String {
    let strat = |s: &PragmaStrategy| match s {
        PragmaStrategy::Demand => "",
        PragmaStrategy::Eager => " EAGER",
    };
    match p {
        Pragma::Maintained(s) => format!("(*MAINTAINED{}*)", strat(s)),
        Pragma::Cached(s, capacity) => {
            let cap = capacity.map(|c| format!(" LRU {c}")).unwrap_or_default();
            format!("(*CACHED{}{cap}*)", strat(s))
        }
        Pragma::Unchecked => "(*UNCHECKED*)".to_string(),
    }
}

fn type_str(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Integer => "INTEGER".to_string(),
        TypeExpr::Boolean => "BOOLEAN".to_string(),
        TypeExpr::Text => "TEXT".to_string(),
        TypeExpr::Named(n) => n.clone(),
        TypeExpr::Array(elem) => format!("ARRAY OF {}", type_str(elem)),
    }
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Global(g) => {
                let init = g
                    .init
                    .as_ref()
                    .map(|e| format!(" := {}", expr_str(e)))
                    .unwrap_or_default();
                self.line(&format!(
                    "VAR {} : {}{init};",
                    g.names.join(", "),
                    type_str(&g.ty)
                ));
            }
            Decl::Type(t) => self.type_decl(t),
            Decl::Proc(p) => self.proc_decl(p),
        }
    }

    fn type_decl(&mut self, t: &TypeDecl) {
        let parent = t
            .parent
            .as_ref()
            .map(|p| format!("{p} "))
            .unwrap_or_default();
        self.line(&format!("TYPE {} = {parent}OBJECT", t.name));
        self.indent += 1;
        for f in &t.fields {
            self.line(&format!("{} : {};", f.names.join(", "), type_str(&f.ty)));
        }
        self.indent -= 1;
        if !t.methods.is_empty() {
            self.line("METHODS");
            self.indent += 1;
            for m in &t.methods {
                let pragma = m
                    .pragma
                    .as_ref()
                    .map(|p| format!("{} ", pragma_str(p)))
                    .unwrap_or_default();
                let params = if m.params.is_empty() {
                    "()".to_string()
                } else {
                    format!(
                        "({})",
                        m.params
                            .iter()
                            .map(|p| format!("{} : {}", p.name, type_str(&p.ty)))
                            .collect::<Vec<_>>()
                            .join("; ")
                    )
                };
                let ret = m
                    .ret
                    .as_ref()
                    .map(|t| format!(" : {}", type_str(t)))
                    .unwrap_or_default();
                self.line(&format!(
                    "{pragma}{}{params}{ret} := {};",
                    m.name, m.impl_proc
                ));
            }
            self.indent -= 1;
        }
        if !t.overrides.is_empty() {
            self.line("OVERRIDES");
            self.indent += 1;
            for o in &t.overrides {
                let pragma = o
                    .pragma
                    .as_ref()
                    .map(|p| format!("{} ", pragma_str(p)))
                    .unwrap_or_default();
                self.line(&format!("{pragma}{} := {};", o.name, o.impl_proc));
            }
            self.indent -= 1;
        }
        self.line("END;");
    }

    fn proc_decl(&mut self, p: &ProcDecl) {
        let pragma = p
            .pragma
            .as_ref()
            .map(|pr| format!("{} ", pragma_str(pr)))
            .unwrap_or_default();
        let params = p
            .params
            .iter()
            .map(|pa| format!("{} : {}", pa.name, type_str(&pa.ty)))
            .collect::<Vec<_>>()
            .join("; ");
        let ret = p
            .ret
            .as_ref()
            .map(|t| format!(" : {}", type_str(t)))
            .unwrap_or_default();
        self.line(&format!("{pragma}PROCEDURE {}({params}){ret} =", p.name));
        for l in &p.locals {
            let init = l
                .init
                .as_ref()
                .map(|e| format!(" := {}", expr_str(e)))
                .unwrap_or_default();
            self.line(&format!(
                "VAR {} : {}{init};",
                l.names.join(", "),
                type_str(&l.ty)
            ));
        }
        self.line("BEGIN");
        self.indent += 1;
        for s in &p.body {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line(&format!("END {};", p.name));
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { target, value, .. } => {
                self.line(&format!("{} := {};", expr_str(target), expr_str(value)));
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (i, (cond, body)) in arms.iter().enumerate() {
                    let kw = if i == 0 { "IF" } else { "ELSIF" };
                    self.line(&format!("{kw} {} THEN", expr_str(cond)));
                    self.indent += 1;
                    for s in body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                if !else_body.is_empty() {
                    self.line("ELSE");
                    self.indent += 1;
                    for s in else_body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.line("END;");
            }
            Stmt::While { cond, body, .. } => {
                self.line(&format!("WHILE {} DO", expr_str(cond)));
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("END;");
            }
            Stmt::For {
                var,
                from,
                to,
                by,
                body,
                ..
            } => {
                let by = by
                    .as_ref()
                    .map(|e| format!(" BY {}", expr_str(e)))
                    .unwrap_or_default();
                self.line(&format!(
                    "FOR {var} := {} TO {}{by} DO",
                    expr_str(from),
                    expr_str(to)
                ));
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("END;");
            }
            Stmt::Return { value, .. } => match value {
                Some(e) => self.line(&format!("RETURN {};", expr_str(e))),
                None => self.line("RETURN;"),
            },
            Stmt::Expr { expr, .. } => self.line(&format!("{};", expr_str(expr))),
        }
    }
}

fn bin_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "DIV",
        BinOp::Mod => "MOD",
        BinOp::Concat => "&",
        BinOp::Eq => "=",
        BinOp::Ne => "#",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

/// Renders an expression (fully parenthesized compounds, so precedence
/// survives a round trip).
pub fn expr_str(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Text(s) => format!("{s:?}"),
        Expr::Bool(true) => "TRUE".to_string(),
        Expr::Bool(false) => "FALSE".to_string(),
        Expr::Nil => "NIL".to_string(),
        Expr::Var { name, .. } => name.clone(),
        Expr::Field { obj, name, .. } => format!("{}.{name}", expr_str(obj)),
        Expr::Call { callee, args, .. } => {
            let args: Vec<String> = args.iter().map(expr_str).collect();
            let mut out = String::new();
            match callee {
                Callee::Proc(name) => write!(out, "{name}").unwrap(),
                Callee::Method { obj, name } => write!(out, "{}.{name}", expr_str(obj)).unwrap(),
            }
            write!(out, "({})", args.join(", ")).unwrap();
            out
        }
        Expr::New { type_name, .. } => format!("NEW({type_name})"),
        Expr::NewArray { elem, size, .. } => {
            format!("NEW(ARRAY OF {}, {})", type_str(elem), expr_str(size))
        }
        Expr::Index { arr, index, .. } => format!("{}[{}]", expr_str(arr), expr_str(index)),
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => format!("-{}", paren(expr)),
            UnOp::Not => format!("NOT {}", paren(expr)),
        },
        Expr::Binary { op, lhs, rhs } => format!("{} {} {}", paren(lhs), bin_str(*op), paren(rhs)),
        Expr::Unchecked { expr: inner, .. } => format!("(*UNCHECKED*) {}", paren(inner)),
    }
}

fn paren(e: &Expr) -> String {
    match e {
        Expr::Binary { .. } | Expr::Unary { .. } => format!("({})", expr_str(e)),
        _ => expr_str(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// The printer emits valid syntax and is a fixpoint under
    /// reparse-and-reprint (trees differ only in source line numbers, which
    /// printing normalizes away).
    fn round_trip(src: &str) {
        let m1 = parse(src).unwrap();
        let printed = unparse(&m1);
        let m2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let reprinted = unparse(&m2);
        assert_eq!(printed, reprinted, "printing is not a fixpoint");
    }

    #[test]
    fn round_trips_globals_and_procs() {
        round_trip(
            r#"
            VAR a, b : INTEGER := 3;
            (*CACHED EAGER*) PROCEDURE F(x : INTEGER; y : TEXT) : INTEGER =
            VAR t : INTEGER := x * 2;
            BEGIN
                IF t > 0 AND x # 3 THEN RETURN t;
                ELSIF NOT (x = 1) THEN t := -t;
                ELSE Print(y & "!");
                END;
                WHILE t < 100 DO t := t + a; END;
                FOR i := 1 TO 10 BY 2 DO t := t + i; END;
                RETURN MAX(t, 0);
            END F;
            "#,
        );
    }

    #[test]
    fn round_trips_object_types() {
        round_trip(
            r#"
            TYPE Tree = OBJECT
                left, right : Tree;
                key : INTEGER;
            METHODS
                (*MAINTAINED*) height() : INTEGER := Height;
                find(k : INTEGER) : BOOLEAN := Find;
            END;
            TYPE TreeNil = Tree OBJECT
            OVERRIDES
                (*MAINTAINED*) height := HeightNil;
            END;
            PROCEDURE Height(t : Tree) : INTEGER =
            BEGIN RETURN MAX(t.left.height(), t.right.height()) + 1; END Height;
            PROCEDURE HeightNil(t : Tree) : INTEGER =
            BEGIN RETURN 0; END HeightNil;
            PROCEDURE Find(t : Tree; k : INTEGER) : BOOLEAN =
            BEGIN RETURN t.key = k; END Find;
            "#,
        );
    }

    #[test]
    fn round_trips_chained_and_unchecked() {
        round_trip(
            r#"
            PROCEDURE F(t : Tree) : INTEGER =
            BEGIN
                t.left := RotateRight(t).balance();
                RETURN (*UNCHECKED*) t.left.height();
            END F;
            TYPE Tree = OBJECT left : Tree; END;
            "#,
        );
    }

    #[test]
    fn round_trips_arrays() {
        round_trip(
            r#"
            VAR xs : ARRAY OF INTEGER;
            VAR grid : ARRAY OF ARRAY OF TEXT;
            PROCEDURE F(n : INTEGER) : INTEGER =
            BEGIN
                xs := NEW(ARRAY OF INTEGER, n);
                xs[0] := LEN(xs);
                RETURN xs[n - 1];
            END F;
            "#,
        );
    }

    #[test]
    fn text_escapes_survive() {
        round_trip(r#"VAR s : TEXT := "a\"b\\c\nd";"#);
    }
}
