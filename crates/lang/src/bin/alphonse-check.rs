//! `alphonse-check` — static analysis and lints for Alphonse-L programs.
//!
//! ```text
//! usage: alphonse-check [--json] [--deny-warnings] <file.alf>...
//!        alphonse-check graph [--dot] [--out <path>] <file.alf>
//! ```
//!
//! The default mode parses and resolves each file, runs effect inference
//! and the W01–W08 lint pass, and reports diagnostics — human-readable
//! with source excerpts by default, one versioned JSON document per run
//! with `--json` (`{"schema":"alphonse-check","version":1,...}`).
//!
//! The `graph` mode runs the same front end and effect inference, builds
//! the whole-program abstract dependency graph ([`alphonse_lang::depgraph`])
//! and prints it as versioned `alphonse-staticgraph` JSON (the input to
//! `alphonse-trace check-static`), or as Graphviz DOT with `--dot`.
//!
//! Exit status: 0 when no diagnostic is an error (warnings allowed unless
//! `--deny-warnings`), 1 when the program is rejected, 2 on usage or I/O
//! errors. Front-end failures (lex/parse/resolve) are reported as `E00`
//! diagnostics rather than aborting the run, so CI can consume one format.

use alphonse_lang::diag::{report_json, Diagnostic, Severity};
use alphonse_lang::token::Span;
use alphonse_lang::{depgraph, effects, lints, parse, resolve, LangError};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: alphonse-check [--json] [--deny-warnings] <file.alf>...\n\
         \x20      alphonse-check graph [--dot] [--out <path>] <file.alf>"
    );
    ExitCode::from(2)
}

/// Runs the full pipeline on one source text, folding front-end errors
/// into the diagnostic stream as `E00`.
fn check_source(source: &str) -> Vec<Diagnostic> {
    let module = match parse(source) {
        Ok(m) => m,
        Err(e) => return vec![front_end_error(e)],
    };
    match resolve(&module) {
        Ok(program) => lints::lint(&program),
        Err(e) => vec![front_end_error(e)],
    }
}

fn front_end_error(e: LangError) -> Diagnostic {
    let span = match &e {
        LangError::Lex { line, .. } | LangError::Parse { line, .. } => Span::new(*line, 1),
        _ => Span::NONE,
    };
    Diagnostic::error("E00", span, e.to_string())
}

/// `alphonse-check graph`: emit the static dependency graph of one file.
fn graph_main(args: &[String]) -> ExitCode {
    let mut dot = false;
    let mut out: Option<String> = None;
    let mut file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dot" => dot = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => {
                eprintln!("alphonse-check graph: unknown option `{arg}`");
                return usage();
            }
            _ if file.is_some() => return usage(),
            _ => file = Some(arg.clone()),
        }
    }
    let Some(file) = file else {
        return usage();
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("alphonse-check: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let program = match parse(&source).and_then(|m| resolve(&m)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("alphonse-check: {file}: {e}");
            return ExitCode::from(1);
        }
    };
    let table = effects::infer(&program);
    let graph = depgraph::build(&program, &table);
    let rendered = if dot {
        graph.to_dot(&program)
    } else {
        graph.to_json(&program, &file)
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("alphonse-check: {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => println!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("graph") {
        return graph_main(&args[1..]);
    }

    let mut json = false;
    let mut deny_warnings = false;
    let mut files = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => {
                eprintln!("alphonse-check: unknown option `{arg}`");
                return usage();
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return usage();
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut reports = Vec::new();
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("alphonse-check: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = check_source(&source);
        errors += diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        warnings += diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        if json {
            reports.push(report_json(file, &diags));
        } else {
            for d in &diags {
                print!("{}", d.render(file, &source));
            }
        }
    }

    if json {
        // A versioned envelope so downstream consumers can detect format
        // drift; per-file reports keep their historical shape inside it.
        println!(
            "{{\"schema\":\"alphonse-check\",\"version\":1,\
             \"tool\":\"alphonse-check {}\",\"reports\":[{}]}}",
            env!("CARGO_PKG_VERSION"),
            reports.join(",")
        );
    } else if errors + warnings > 0 {
        println!(
            "alphonse-check: {errors} error{}, {warnings} warning{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" }
        );
    }

    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
