//! Name resolution and static type checking.
//!
//! Lowers the surface AST to [`crate::hir`], enforcing:
//!
//! * declaration rules: unique names, known supertypes, acyclic
//!   inheritance, methods implemented by declared procedures with
//!   compatible signatures;
//! * the pragma discipline of Section 3.3: `(*MAINTAINED*)` on methods and
//!   overrides (consistently across a hierarchy), `(*CACHED*)` on
//!   procedures, and no procedure serving two incompatible incremental
//!   roles;
//! * conventional static typing with nominal subtyping and `NIL`
//!   compatibility.

use crate::ast;
use crate::error::{LangError, Result};
use crate::hir::*;
use crate::token::{Pragma, PragmaStrategy, Span};
use std::collections::HashMap;
use std::sync::Arc;

/// Resolves and type-checks a parsed module.
///
/// # Errors
///
/// Returns [`LangError::Resolve`] for naming/declaration problems and
/// [`LangError::Type`] for type errors.
pub fn resolve(module: &ast::Module) -> Result<Program> {
    Resolver::default().run(module)
}

/// Inferred type of an expression: a concrete type or the bottom `NIL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ETy {
    Known(Ty),
    NilLit,
}

impl ETy {
    fn describe(&self, prog: &Program) -> String {
        match self {
            ETy::NilLit => "NIL".to_string(),
            ETy::Known(Ty::Integer) => "INTEGER".to_string(),
            ETy::Known(Ty::Boolean) => "BOOLEAN".to_string(),
            ETy::Known(Ty::Text) => "TEXT".to_string(),
            ETy::Known(Ty::Object(t)) => prog.types[*t].name.clone(),
            ETy::Known(Ty::Array(a)) => {
                format!(
                    "ARRAY OF {}",
                    ETy::Known(prog.array_elems[*a]).describe(prog)
                )
            }
        }
    }
}

#[derive(Default)]
struct Resolver {
    prog: Program,
}

struct ProcCtx {
    /// name -> frame slot for params and visible locals.
    scopes: Vec<HashMap<String, (usize, Ty)>>,
    /// Slots of FOR loop variables currently in scope (read-only, as in
    /// Modula-3).
    for_slots: Vec<usize>,
    frame_size: usize,
    ret: Option<Ty>,
}

impl ProcCtx {
    fn lookup(&self, name: &str) -> Option<(usize, Ty)> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: Ty) -> Result<usize> {
        let slot = self.frame_size;
        self.frame_size += 1;
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), (slot, ty)).is_some() {
            return Err(LangError::resolve(format!(
                "duplicate declaration of {name} in the same scope"
            )));
        }
        Ok(slot)
    }
}

fn strategy(p: PragmaStrategy) -> Strategy {
    match p {
        PragmaStrategy::Demand => Strategy::Demand,
        PragmaStrategy::Eager => Strategy::Eager,
    }
}

impl Resolver {
    fn run(mut self, module: &ast::Module) -> Result<Program> {
        // Pass 1: collect type names (so types can reference each other).
        for decl in &module.decls {
            if let ast::Decl::Type(t) = decl {
                if self.prog.type_by_name.contains_key(&t.name) {
                    return Err(LangError::resolve(format!("duplicate type {}", t.name)));
                }
                let id = self.prog.types.len();
                self.prog.types.push(TypeInfo {
                    name: t.name.clone(),
                    parent: None,
                    ancestry: Vec::new(),
                    fields: Vec::new(),
                    methods: Vec::new(),
                });
                self.prog.type_by_name.insert(t.name.clone(), id);
            }
        }
        // Pass 2: collect procedure signatures and globals.
        for decl in &module.decls {
            match decl {
                ast::Decl::Proc(p) => self.collect_proc_signature(p)?,
                ast::Decl::Global(g) => self.collect_globals(g)?,
                ast::Decl::Type(_) => {}
            }
        }
        // Pass 3: build type structure (fields, methods, inheritance).
        for decl in &module.decls {
            if let ast::Decl::Type(t) = decl {
                self.build_type(t)?;
            }
        }
        // Pass 3b: mark procedures implementing maintained methods.
        self.mark_maintained(module)?;
        // Pass 4: resolve global initializers.
        let globals_src: Vec<&ast::GlobalDecl> = module
            .decls
            .iter()
            .filter_map(|d| match d {
                ast::Decl::Global(g) => Some(g),
                _ => None,
            })
            .collect();
        let mut gi = 0;
        for g in globals_src {
            for _ in &g.names {
                if let Some(init) = &g.init {
                    let mut ctx = ProcCtx {
                        scopes: vec![HashMap::new()],
                        for_slots: Vec::new(),
                        frame_size: 0,
                        ret: None,
                    };
                    let (e, ety) = self.expr(init, &mut ctx)?;
                    let want = self.prog.globals[gi].ty;
                    self.require_assignable(ety, want, "global initializer")?;
                    // Initializers run in declaration order: referencing a
                    // later-declared global would silently read its default.
                    self.reject_forward_global_refs(&e, gi)?;
                    self.prog.globals[gi].init = Some(e);
                }
                gi += 1;
            }
        }
        // Pass 5: resolve procedure bodies.
        let procs_src: Vec<&ast::ProcDecl> = module
            .decls
            .iter()
            .filter_map(|d| match d {
                ast::Decl::Proc(p) => Some(p),
                _ => None,
            })
            .collect();
        for p in procs_src {
            self.resolve_proc_body(p)?;
        }
        Ok(self.prog)
    }

    /// Rejects reads of globals declared after index `current` inside a
    /// global initializer (they would observe the default value, not their
    /// declared initializer).
    fn reject_forward_global_refs(&self, e: &HExpr, current: usize) -> Result<()> {
        let mut bad = None;
        walk_hexpr(e, &mut |x| {
            if let HExpr::Global(j) = x {
                if *j >= current && bad.is_none() {
                    bad = Some(*j);
                }
            }
        });
        match bad {
            Some(j) => Err(LangError::resolve(format!(
                "global initializer references {} before it is initialized",
                self.prog.globals[j].name
            ))),
            None => Ok(()),
        }
    }

    fn lower_type(&mut self, t: &ast::TypeExpr) -> Result<Ty> {
        match t {
            ast::TypeExpr::Integer => Ok(Ty::Integer),
            ast::TypeExpr::Boolean => Ok(Ty::Boolean),
            ast::TypeExpr::Text => Ok(Ty::Text),
            ast::TypeExpr::Named(name) => self
                .prog
                .type_by_name
                .get(name)
                .map(|&id| Ty::Object(id))
                .ok_or_else(|| LangError::resolve(format!("unknown type {name}"))),
            ast::TypeExpr::Array(elem) => {
                let elem = self.lower_type(elem)?;
                Ok(Ty::Array(self.intern_array(elem)))
            }
        }
    }

    /// Interns `ARRAY OF elem` structurally, so equal array types share an
    /// id and `Ty` stays `Copy`.
    fn intern_array(&mut self, elem: Ty) -> usize {
        if let Some(i) = self.prog.array_elems.iter().position(|&e| e == elem) {
            return i;
        }
        self.prog.array_elems.push(elem);
        self.prog.array_elems.len() - 1
    }

    fn collect_proc_signature(&mut self, p: &ast::ProcDecl) -> Result<()> {
        if matches!(p.name.as_str(), "MAX" | "MIN" | "ABS" | "Print" | "LEN") {
            return Err(LangError::resolve(format!(
                "procedure name {} collides with a builtin",
                p.name
            )));
        }
        if self.prog.proc_by_name.contains_key(&p.name) {
            return Err(LangError::resolve(format!(
                "duplicate procedure {}",
                p.name
            )));
        }
        let mut params = Vec::new();
        for param in &p.params {
            params.push((param.name.clone(), self.lower_type(&param.ty)?));
        }
        let ret = p.ret.as_ref().map(|t| self.lower_type(t)).transpose()?;
        let incremental = match p.pragma {
            Some(Pragma::Cached(s, _)) => Some((IncrKind::Cached, strategy(s))),
            Some(_) => {
                return Err(LangError::resolve(format!(
                    "procedure {} carries a non-CACHED pragma",
                    p.name
                )))
            }
            None => None,
        };
        let cache_capacity = match p.pragma {
            Some(Pragma::Cached(_, cap)) => cap.map(|c| c as usize),
            _ => None,
        };
        let id = self.prog.procs.len();
        self.prog.procs.push(ProcInfo {
            name: p.name.clone(),
            incremental,
            cache_capacity,
            params,
            ret,
            frame_size: 0,
            local_inits: Vec::new(),
            body: Vec::new(),
            span: p.span,
        });
        self.prog.proc_by_name.insert(p.name.clone(), id);
        Ok(())
    }

    fn collect_globals(&mut self, g: &ast::GlobalDecl) -> Result<()> {
        let ty = self.lower_type(&g.ty)?;
        for name in &g.names {
            if self.prog.global_by_name.contains_key(name) {
                return Err(LangError::resolve(format!("duplicate global {name}")));
            }
            let idx = self.prog.globals.len();
            self.prog.globals.push(GlobalInfo {
                name: name.clone(),
                ty,
                init: None,
            });
            self.prog.global_by_name.insert(name.clone(), idx);
        }
        Ok(())
    }

    fn build_type(&mut self, t: &ast::TypeDecl) -> Result<()> {
        let id = self.prog.type_by_name[&t.name];
        // Parent linkage + flattened fields/methods. Parents must already be
        // fully built; require declaration before use (checks cycles too).
        let (mut fields, mut methods, parent, mut ancestry) = match &t.parent {
            Some(pname) => {
                let pid = *self.prog.type_by_name.get(pname).ok_or_else(|| {
                    LangError::resolve(format!("unknown supertype {pname} of {}", t.name))
                })?;
                let pinfo = &self.prog.types[pid];
                if pinfo.ancestry.is_empty() && pid != id {
                    return Err(LangError::resolve(format!(
                        "supertype {pname} must be declared before {}",
                        t.name
                    )));
                }
                if pid == id {
                    return Err(LangError::resolve(format!(
                        "type {} inherits itself",
                        t.name
                    )));
                }
                (
                    pinfo.fields.clone(),
                    pinfo.methods.clone(),
                    Some(pid),
                    pinfo.ancestry.clone(),
                )
            }
            None => (Vec::new(), Vec::new(), None, Vec::new()),
        };
        ancestry.insert(0, id);
        // Commit ancestry before checking method signatures: the receiver
        // compatibility check consults `is_subtype` on this very type.
        self.prog.types[id].parent = parent;
        self.prog.types[id].ancestry = ancestry;

        for group in &t.fields {
            let ty = self.lower_type(&group.ty)?;
            for name in &group.names {
                if fields.iter().any(|f| &f.name == name) {
                    return Err(LangError::resolve(format!(
                        "duplicate field {name} in type {}",
                        t.name
                    )));
                }
                fields.push(FieldInfo {
                    name: name.clone(),
                    ty,
                });
            }
        }

        for m in &t.methods {
            if methods.iter().any(|mm| mm.name == m.name) {
                return Err(LangError::resolve(format!(
                    "method {} redeclared in type {} (use OVERRIDES)",
                    m.name, t.name
                )));
            }
            let impl_proc = self.expect_proc(&m.impl_proc, &m.name)?;
            let mut params = Vec::new();
            for p in &m.params {
                params.push(self.lower_type(&p.ty)?);
            }
            let ret = m.ret.as_ref().map(|t| self.lower_type(t)).transpose()?;
            self.check_method_signature(id, impl_proc, &params, ret, &m.name)?;
            methods.push(MethodImpl {
                name: m.name.clone(),
                params,
                ret,
                maintained: matches!(m.pragma, Some(Pragma::Maintained(_))),
                span: m.span,
                impl_proc,
            });
        }

        for o in &t.overrides {
            let impl_proc = self.expect_proc(&o.impl_proc, &o.name)?;
            let slot = methods
                .iter()
                .position(|mm| mm.name == o.name)
                .ok_or_else(|| {
                    LangError::resolve(format!(
                        "override of unknown method {} in type {}",
                        o.name, t.name
                    ))
                })?;
            let maintained_here = matches!(o.pragma, Some(Pragma::Maintained(_)));
            if methods[slot].maintained != maintained_here {
                return Err(LangError::resolve(format!(
                    "override of {} in {} must {}carry (*MAINTAINED*) to match its declaration",
                    o.name,
                    t.name,
                    if methods[slot].maintained { "" } else { "not " }
                )));
            }
            let (params, ret) = (methods[slot].params.clone(), methods[slot].ret);
            self.check_method_signature(id, impl_proc, &params, ret, &o.name)?;
            methods[slot].impl_proc = impl_proc;
        }

        let info = &mut self.prog.types[id];
        info.fields = fields;
        info.methods = methods;
        Ok(())
    }

    fn expect_proc(&self, name: &str, method: &str) -> Result<ProcId> {
        self.prog.proc_by_name.get(name).copied().ok_or_else(|| {
            LangError::resolve(format!(
                "method {method} names unknown implementation procedure {name}"
            ))
        })
    }

    /// The implementing procedure must take the receiver (typed as this
    /// type or an ancestor) followed by the method parameters.
    fn check_method_signature(
        &self,
        ty: TypeId,
        proc: ProcId,
        params: &[Ty],
        ret: Option<Ty>,
        method: &str,
    ) -> Result<()> {
        let p = &self.prog.procs[proc];
        if p.params.len() != params.len() + 1 {
            return Err(LangError::ty(format!(
                "procedure {} implements method {method} but takes {} parameters (receiver + {} expected)",
                p.name,
                p.params.len(),
                params.len()
            )));
        }
        match p.params[0].1 {
            Ty::Object(recv) if self.prog.is_subtype(ty, recv) => {}
            _ => {
                return Err(LangError::ty(format!(
                    "procedure {} implementing {method} must take the receiver ({}) first",
                    p.name, self.prog.types[ty].name
                )))
            }
        }
        for (i, want) in params.iter().enumerate() {
            if p.params[i + 1].1 != *want {
                return Err(LangError::ty(format!(
                    "procedure {} parameter {} does not match method {method}",
                    p.name,
                    i + 1
                )));
            }
        }
        if p.ret != ret {
            return Err(LangError::ty(format!(
                "procedure {} return type does not match method {method}",
                p.name
            )));
        }
        Ok(())
    }

    /// Marks procedures that implement maintained methods as incremental,
    /// with the strategy named on the method/override pragma.
    fn mark_maintained(&mut self, module: &ast::Module) -> Result<()> {
        for decl in &module.decls {
            let ast::Decl::Type(t) = decl else { continue };
            let pragmas = t
                .methods
                .iter()
                .map(|m| (m.pragma, &m.impl_proc))
                .chain(t.overrides.iter().map(|o| (o.pragma, &o.impl_proc)));
            for (pragma, impl_name) in pragmas {
                let Some(Pragma::Maintained(s)) = pragma else {
                    continue;
                };
                let pid = self.prog.proc_by_name[impl_name];
                let new = (IncrKind::Maintained, strategy(s));
                match self.prog.procs[pid].incremental {
                    None => self.prog.procs[pid].incremental = Some(new),
                    Some(existing) if existing == new => {}
                    Some(_) => {
                        return Err(LangError::resolve(format!(
                            "procedure {impl_name} is used with conflicting incremental pragmas"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bodies
    // ------------------------------------------------------------------

    fn resolve_proc_body(&mut self, p: &ast::ProcDecl) -> Result<()> {
        let pid = self.prog.proc_by_name[&p.name];
        let ret = self.prog.procs[pid].ret;
        let mut ctx = ProcCtx {
            scopes: vec![HashMap::new()],
            for_slots: Vec::new(),
            frame_size: 0,
            ret,
        };
        let params = self.prog.procs[pid].params.clone();
        for (name, ty) in &params {
            ctx.declare(name, *ty)?;
        }
        let mut local_inits = Vec::new();
        for group in &p.locals {
            let ty = self.lower_type(&group.ty)?;
            for name in &group.names {
                let init = group
                    .init
                    .as_ref()
                    .map(|e| {
                        let (he, ety) = self.expr(e, &mut ctx)?;
                        self.require_assignable(ety, ty, &format!("initializer of {name}"))?;
                        Ok::<HExpr, LangError>(he)
                    })
                    .transpose()?;
                let slot = ctx.declare(name, ty)?;
                local_inits.push((slot, ty, init));
            }
        }
        let body = self.stmts(&p.body, &mut ctx)?;
        let info = &mut self.prog.procs[pid];
        info.frame_size = ctx.frame_size;
        info.local_inits = local_inits;
        info.body = body;
        Ok(())
    }

    fn stmts(&mut self, stmts: &[ast::Stmt], ctx: &mut ProcCtx) -> Result<Vec<HStmt>> {
        stmts.iter().map(|s| self.stmt(s, ctx)).collect()
    }

    fn stmt(&mut self, s: &ast::Stmt, ctx: &mut ProcCtx) -> Result<HStmt> {
        match s {
            ast::Stmt::Assign {
                target,
                value,
                span,
            } => {
                let (hv, vty) = self.expr(value, ctx)?;
                match target {
                    ast::Expr::Var { name, .. } => {
                        if let Some((slot, ty)) = ctx.lookup(name) {
                            if ctx.for_slots.contains(&slot) {
                                return Err(LangError::ty(format!(
                                    "FOR variable {name} is read-only"
                                )));
                            }
                            self.require_assignable(vty, ty, &format!("assignment to {name}"))?;
                            Ok(HStmt::AssignLocal { slot, value: hv })
                        } else if let Some(&idx) = self.prog.global_by_name.get(name) {
                            let ty = self.prog.globals[idx].ty;
                            self.require_assignable(vty, ty, &format!("assignment to {name}"))?;
                            Ok(HStmt::AssignGlobal {
                                span: *span,
                                index: idx,
                                value: hv,
                            })
                        } else {
                            Err(LangError::resolve(format!("unknown variable {name}")))
                        }
                    }
                    ast::Expr::Field { obj, name, .. } => {
                        let (hobj, oty) = self.expr(obj, ctx)?;
                        let (field, fty) = self.field_of(oty, name)?;
                        self.require_assignable(vty, fty, &format!("assignment to .{name}"))?;
                        Ok(HStmt::AssignField {
                            span: *span,
                            obj: hobj,
                            field,
                            value: hv,
                        })
                    }
                    ast::Expr::Index { arr, index, .. } => {
                        let (harr, aty) = self.expr(arr, ctx)?;
                        let elem = match aty {
                            ETy::Known(Ty::Array(a)) => self.prog.array_elems[a],
                            other => {
                                return Err(LangError::ty(format!(
                                    "indexing non-array {}",
                                    other.describe(&self.prog)
                                )))
                            }
                        };
                        let (hidx, ity) = self.expr(index, ctx)?;
                        self.require(ity, Ty::Integer, "array index")?;
                        self.require_assignable(vty, elem, "array element assignment")?;
                        Ok(HStmt::AssignIndex {
                            span: *span,
                            arr: harr,
                            index: hidx,
                            value: hv,
                        })
                    }
                    _ => Err(LangError::resolve(
                        "assignment target must be a variable, field or array element".to_string(),
                    )),
                }
            }
            ast::Stmt::If {
                arms, else_body, ..
            } => {
                let mut harms = Vec::new();
                for (cond, body) in arms {
                    let (hc, cty) = self.expr(cond, ctx)?;
                    self.require(cty, Ty::Boolean, "IF condition")?;
                    ctx.scopes.push(HashMap::new());
                    let hb = self.stmts(body, ctx)?;
                    ctx.scopes.pop();
                    harms.push((hc, hb));
                }
                ctx.scopes.push(HashMap::new());
                let helse = self.stmts(else_body, ctx)?;
                ctx.scopes.pop();
                Ok(HStmt::If {
                    arms: harms,
                    else_body: helse,
                })
            }
            ast::Stmt::While { cond, body, .. } => {
                let (hc, cty) = self.expr(cond, ctx)?;
                self.require(cty, Ty::Boolean, "WHILE condition")?;
                ctx.scopes.push(HashMap::new());
                let hb = self.stmts(body, ctx)?;
                ctx.scopes.pop();
                Ok(HStmt::While { cond: hc, body: hb })
            }
            ast::Stmt::For {
                var,
                from,
                to,
                by,
                body,
                ..
            } => {
                let (hfrom, fty) = self.expr(from, ctx)?;
                self.require(fty, Ty::Integer, "FOR start")?;
                let (hto, tty) = self.expr(to, ctx)?;
                self.require(tty, Ty::Integer, "FOR bound")?;
                let hby = by
                    .as_ref()
                    .map(|e| {
                        let (he, ety) = self.expr(e, ctx)?;
                        self.require(ety, Ty::Integer, "FOR step")?;
                        Ok::<HExpr, LangError>(he)
                    })
                    .transpose()?;
                ctx.scopes.push(HashMap::new());
                let slot = ctx.declare(var, Ty::Integer)?;
                ctx.for_slots.push(slot);
                let hb = self.stmts(body, ctx)?;
                ctx.for_slots.pop();
                ctx.scopes.pop();
                Ok(HStmt::For {
                    slot,
                    from: hfrom,
                    to: hto,
                    by: hby,
                    body: hb,
                })
            }
            ast::Stmt::Return { value, .. } => match (value, ctx.ret) {
                (None, None) => Ok(HStmt::Return(None)),
                (Some(e), Some(want)) => {
                    let (he, ety) = self.expr(e, ctx)?;
                    self.require_assignable(ety, want, "RETURN value")?;
                    Ok(HStmt::Return(Some(he)))
                }
                (None, Some(_)) => Err(LangError::ty(
                    "RETURN without a value in a function procedure".to_string(),
                )),
                (Some(_), None) => Err(LangError::ty(
                    "RETURN with a value in a proper procedure".to_string(),
                )),
            },
            ast::Stmt::Expr { expr, .. } => {
                let (he, _) = self.expr_allow_void(expr, ctx)?;
                Ok(HStmt::Expr(he))
            }
        }
    }

    fn field_of(&self, oty: ETy, name: &str) -> Result<(usize, Ty)> {
        match oty {
            ETy::Known(Ty::Object(t)) => {
                let off = self.prog.field_offset(t, name).ok_or_else(|| {
                    LangError::ty(format!(
                        "type {} has no field {name}",
                        self.prog.types[t].name
                    ))
                })?;
                Ok((off, self.prog.types[t].fields[off].ty))
            }
            other => Err(LangError::ty(format!(
                "field access .{name} on non-object {}",
                other.describe(&self.prog)
            ))),
        }
    }

    fn require(&self, got: ETy, want: Ty, what: &str) -> Result<()> {
        self.require_assignable(got, want, what)
    }

    fn require_assignable(&self, got: ETy, want: Ty, what: &str) -> Result<()> {
        let ok = match (got, want) {
            (ETy::NilLit, Ty::Object(_)) | (ETy::NilLit, Ty::Array(_)) => true,
            (ETy::Known(Ty::Object(a)), Ty::Object(b)) => self.prog.is_subtype(a, b),
            (ETy::Known(a), b) => a == b,
            (ETy::NilLit, _) => false,
        };
        if ok {
            Ok(())
        } else {
            Err(LangError::ty(format!(
                "{what}: expected {}, found {}",
                ETy::Known(want).describe(&self.prog),
                got.describe(&self.prog)
            )))
        }
    }

    fn expr(&mut self, e: &ast::Expr, ctx: &mut ProcCtx) -> Result<(HExpr, ETy)> {
        let (he, ty) = self.expr_allow_void(e, ctx)?;
        match ty {
            Some(t) => Ok((he, t)),
            None => Err(LangError::ty(
                "call of a proper procedure used as a value".to_string(),
            )),
        }
    }

    #[allow(clippy::type_complexity)]
    fn expr_allow_void(
        &mut self,
        e: &ast::Expr,
        ctx: &mut ProcCtx,
    ) -> Result<(HExpr, Option<ETy>)> {
        use ast::Expr as E;
        match e {
            E::Int(v) => Ok((HExpr::Int(*v), Some(ETy::Known(Ty::Integer)))),
            E::Text(s) => Ok((
                HExpr::Text(Arc::from(s.as_str())),
                Some(ETy::Known(Ty::Text)),
            )),
            E::Bool(b) => Ok((HExpr::Bool(*b), Some(ETy::Known(Ty::Boolean)))),
            E::Nil => Ok((HExpr::Nil, Some(ETy::NilLit))),
            E::Var { name, .. } => {
                if let Some((slot, ty)) = ctx.lookup(name) {
                    Ok((HExpr::Local(slot), Some(ETy::Known(ty))))
                } else if let Some(&idx) = self.prog.global_by_name.get(name) {
                    Ok((
                        HExpr::Global(idx),
                        Some(ETy::Known(self.prog.globals[idx].ty)),
                    ))
                } else {
                    Err(LangError::resolve(format!("unknown variable {name}")))
                }
            }
            E::Field { obj, name, .. } => {
                let (hobj, oty) = self.expr(obj, ctx)?;
                let (field, fty) = self.field_of(oty, name)?;
                Ok((
                    HExpr::Field {
                        obj: Box::new(hobj),
                        field,
                    },
                    Some(ETy::Known(fty)),
                ))
            }
            E::New { type_name, .. } => {
                let t = self
                    .prog
                    .type_by_name
                    .get(type_name)
                    .copied()
                    .ok_or_else(|| {
                        LangError::resolve(format!("NEW of unknown type {type_name}"))
                    })?;
                Ok((HExpr::New(t), Some(ETy::Known(Ty::Object(t)))))
            }
            E::Unchecked { expr: inner, span } => {
                let (he, ty) = self.expr(inner, ctx)?;
                Ok((
                    HExpr::Unchecked {
                        expr: Box::new(he),
                        span: *span,
                    },
                    Some(ty),
                ))
            }
            E::NewArray { elem, size, .. } => {
                let elem = self.lower_type(elem)?;
                let (hsize, sty) = self.expr(size, ctx)?;
                self.require(sty, Ty::Integer, "array size")?;
                let a = self.intern_array(elem);
                Ok((
                    HExpr::NewArray {
                        elem,
                        size: Box::new(hsize),
                    },
                    Some(ETy::Known(Ty::Array(a))),
                ))
            }
            E::Index { arr, index, .. } => {
                let (harr, aty) = self.expr(arr, ctx)?;
                let elem = match aty {
                    ETy::Known(Ty::Array(a)) => self.prog.array_elems[a],
                    other => {
                        return Err(LangError::ty(format!(
                            "indexing non-array {}",
                            other.describe(&self.prog)
                        )))
                    }
                };
                let (hidx, ity) = self.expr(index, ctx)?;
                self.require(ity, Ty::Integer, "array index")?;
                Ok((
                    HExpr::Index {
                        arr: Box::new(harr),
                        index: Box::new(hidx),
                    },
                    Some(ETy::Known(elem)),
                ))
            }
            E::Unary { op, expr } => {
                let (he, ty) = self.expr(expr, ctx)?;
                match op {
                    ast::UnOp::Neg => self.require(ty, Ty::Integer, "unary -")?,
                    ast::UnOp::Not => self.require(ty, Ty::Boolean, "NOT")?,
                }
                let out = match op {
                    ast::UnOp::Neg => Ty::Integer,
                    ast::UnOp::Not => Ty::Boolean,
                };
                Ok((
                    HExpr::Unary {
                        op: *op,
                        expr: Box::new(he),
                    },
                    Some(ETy::Known(out)),
                ))
            }
            E::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, ctx),
            E::Call { callee, args, span } => self.call(callee, args, *span, ctx),
        }
    }

    #[allow(clippy::type_complexity)]
    fn binary(
        &mut self,
        op: ast::BinOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        ctx: &mut ProcCtx,
    ) -> Result<(HExpr, Option<ETy>)> {
        use ast::BinOp as B;
        let (hl, lt) = self.expr(lhs, ctx)?;
        let (hr, rt) = self.expr(rhs, ctx)?;
        let out = match op {
            B::Add | B::Sub | B::Mul | B::Div | B::Mod => {
                self.require(lt, Ty::Integer, "arithmetic operand")?;
                self.require(rt, Ty::Integer, "arithmetic operand")?;
                Ty::Integer
            }
            B::Concat => {
                self.require(lt, Ty::Text, "& operand")?;
                self.require(rt, Ty::Text, "& operand")?;
                Ty::Text
            }
            B::Lt | B::Le | B::Gt | B::Ge => {
                self.require(lt, Ty::Integer, "comparison operand")?;
                self.require(rt, Ty::Integer, "comparison operand")?;
                Ty::Boolean
            }
            B::And | B::Or => {
                self.require(lt, Ty::Boolean, "boolean operand")?;
                self.require(rt, Ty::Boolean, "boolean operand")?;
                Ty::Boolean
            }
            B::Eq | B::Ne => {
                let compatible = match (lt, rt) {
                    (ETy::NilLit, ETy::NilLit) => true,
                    (ETy::NilLit, ETy::Known(Ty::Object(_) | Ty::Array(_)))
                    | (ETy::Known(Ty::Object(_) | Ty::Array(_)), ETy::NilLit) => true,
                    (ETy::Known(Ty::Object(a)), ETy::Known(Ty::Object(b))) => {
                        self.prog.is_subtype(a, b) || self.prog.is_subtype(b, a)
                    }
                    (ETy::Known(a), ETy::Known(b)) => a == b,
                    _ => false,
                };
                if !compatible {
                    return Err(LangError::ty(format!(
                        "= / # on incompatible types {} and {}",
                        lt.describe(&self.prog),
                        rt.describe(&self.prog)
                    )));
                }
                Ty::Boolean
            }
        };
        Ok((
            HExpr::Binary {
                op,
                lhs: Box::new(hl),
                rhs: Box::new(hr),
            },
            Some(ETy::Known(out)),
        ))
    }

    #[allow(clippy::type_complexity)]
    fn call(
        &mut self,
        callee: &ast::Callee,
        args: &[ast::Expr],
        span: Span,
        ctx: &mut ProcCtx,
    ) -> Result<(HExpr, Option<ETy>)> {
        match callee {
            ast::Callee::Proc(name) => {
                // Builtins first.
                let builtin = match name.as_str() {
                    "MAX" => Some(Builtin::Max),
                    "MIN" => Some(Builtin::Min),
                    "ABS" => Some(Builtin::Abs),
                    "Print" => Some(Builtin::Print),
                    "LEN" => Some(Builtin::Len),
                    _ => None,
                };
                if let Some(b) = builtin {
                    return self.builtin_call(b, args, ctx);
                }
                let pid = self.prog.proc_by_name.get(name).copied().ok_or_else(|| {
                    LangError::resolve(format!("call of unknown procedure {name}"))
                })?;
                let (param_tys, ret) = {
                    let p = &self.prog.procs[pid];
                    (p.params.iter().map(|(_, t)| *t).collect::<Vec<_>>(), p.ret)
                };
                let hargs = self.check_args(name, &param_tys, args, ctx)?;
                Ok((
                    HExpr::CallProc {
                        proc: pid,
                        args: hargs,
                    },
                    ret.map(ETy::Known),
                ))
            }
            ast::Callee::Method { obj, name } => {
                let (hobj, oty) = self.expr(obj, ctx)?;
                let t = match oty {
                    ETy::Known(Ty::Object(t)) => t,
                    other => {
                        return Err(LangError::ty(format!(
                            "method call .{name}() on non-object {}",
                            other.describe(&self.prog)
                        )))
                    }
                };
                let slot = self.prog.method_slot(t, name).ok_or_else(|| {
                    LangError::ty(format!(
                        "type {} has no method {name}",
                        self.prog.types[t].name
                    ))
                })?;
                let (param_tys, ret) = {
                    let m = &self.prog.types[t].methods[slot];
                    (m.params.clone(), m.ret)
                };
                let hargs = self.check_args(name, &param_tys, args, ctx)?;
                Ok((
                    HExpr::CallMethod {
                        span,
                        name: Arc::from(name.as_str()),
                        obj: Box::new(hobj),
                        slot,
                        args: hargs,
                    },
                    ret.map(ETy::Known),
                ))
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn builtin_call(
        &mut self,
        b: Builtin,
        args: &[ast::Expr],
        ctx: &mut ProcCtx,
    ) -> Result<(HExpr, Option<ETy>)> {
        let (arity, ret) = match b {
            Builtin::Max | Builtin::Min => (2, Some(ETy::Known(Ty::Integer))),
            Builtin::Abs | Builtin::Len => (1, Some(ETy::Known(Ty::Integer))),
            Builtin::Print => (1, None),
        };
        if args.len() != arity {
            return Err(LangError::ty(format!(
                "builtin {b:?} takes {arity} argument(s), got {}",
                args.len()
            )));
        }
        let mut hargs = Vec::new();
        for a in args {
            let (ha, aty) = self.expr(a, ctx)?;
            match b {
                Builtin::Print => {}
                Builtin::Len => {
                    if !matches!(aty, ETy::Known(Ty::Array(_))) {
                        return Err(LangError::ty(format!(
                            "LEN of non-array {}",
                            aty.describe(&self.prog)
                        )));
                    }
                }
                _ => self.require(aty, Ty::Integer, "builtin argument")?,
            }
            hargs.push(ha);
        }
        Ok((
            HExpr::CallBuiltin {
                builtin: b,
                args: hargs,
            },
            ret,
        ))
    }

    fn check_args(
        &mut self,
        name: &str,
        params: &[Ty],
        args: &[ast::Expr],
        ctx: &mut ProcCtx,
    ) -> Result<Vec<HExpr>> {
        if params.len() != args.len() {
            return Err(LangError::ty(format!(
                "{name} takes {} argument(s), got {}",
                params.len(),
                args.len()
            )));
        }
        let mut out = Vec::new();
        for (a, want) in args.iter().zip(params) {
            let (ha, aty) = self.expr(a, ctx)?;
            self.require_assignable(aty, *want, &format!("argument of {name}"))?;
            out.push(ha);
        }
        Ok(out)
    }
}

/// Visits every sub-expression of `e`, including `e` itself.
fn walk_hexpr(e: &HExpr, f: &mut impl FnMut(&HExpr)) {
    f(e);
    match e {
        HExpr::Field { obj, .. } => walk_hexpr(obj, f),
        HExpr::CallProc { args, .. } | HExpr::CallBuiltin { args, .. } => {
            for a in args {
                walk_hexpr(a, f);
            }
        }
        HExpr::CallMethod { obj, args, .. } => {
            walk_hexpr(obj, f);
            for a in args {
                walk_hexpr(a, f);
            }
        }
        HExpr::NewArray { size, .. } => walk_hexpr(size, f),
        HExpr::Index { arr, index } => {
            walk_hexpr(arr, f);
            walk_hexpr(index, f);
        }
        HExpr::Unary { expr, .. } | HExpr::Unchecked { expr, .. } => walk_hexpr(expr, f),
        HExpr::Binary { lhs, rhs, .. } => {
            walk_hexpr(lhs, f);
            walk_hexpr(rhs, f);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ok(src: &str) -> Program {
        resolve(&parse(src).unwrap()).unwrap()
    }

    fn fails(src: &str) -> LangError {
        resolve(&parse(src).unwrap()).unwrap_err()
    }

    const TREE: &str = r#"
        TYPE Tree = OBJECT
            left, right : Tree;
        METHODS
            (*MAINTAINED*) height() : INTEGER := Height;
        END;
        TYPE TreeNil = Tree OBJECT
        OVERRIDES
            (*MAINTAINED*) height := HeightNil;
        END;
        PROCEDURE Height(t : Tree) : INTEGER =
        BEGIN
            RETURN MAX(t.left.height(), t.right.height()) + 1;
        END Height;
        PROCEDURE HeightNil(t : Tree) : INTEGER =
        BEGIN RETURN 0; END HeightNil;
    "#;

    #[test]
    fn resolves_the_tree_program() {
        let p = ok(TREE);
        assert_eq!(p.types.len(), 2);
        assert_eq!(p.procs.len(), 2);
        let tree = p.type_by_name["Tree"];
        let treenil = p.type_by_name["TreeNil"];
        assert!(p.is_subtype(treenil, tree));
        assert!(!p.is_subtype(tree, treenil));
        // Both impls are marked incremental (maintained).
        assert_eq!(p.incremental_proc_count(), 2);
        // Override redirects the slot.
        let slot = p.method_slot(treenil, "height").unwrap();
        assert_eq!(
            p.types[treenil].methods[slot].impl_proc,
            p.proc_by_name["HeightNil"]
        );
        assert_eq!(
            p.types[tree].methods[slot].impl_proc,
            p.proc_by_name["Height"]
        );
    }

    #[test]
    fn inherited_fields_are_flattened() {
        let p = ok(r#"
            TYPE A = OBJECT x : INTEGER; END;
            TYPE B = A OBJECT y : INTEGER; END;
        "#);
        let b = p.type_by_name["B"];
        assert_eq!(p.field_offset(b, "x"), Some(0));
        assert_eq!(p.field_offset(b, "y"), Some(1));
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let e = fails("PROCEDURE F() = BEGIN x := 1; END F;");
        assert!(matches!(e, LangError::Resolve { .. }));
    }

    #[test]
    fn type_errors_are_reported() {
        let e = fails(r#"VAR x : INTEGER := TRUE;"#);
        assert!(matches!(e, LangError::Type { .. }));
        let e = fails(
            "PROCEDURE F(n : INTEGER) : INTEGER = BEGIN RETURN n; END F;
             VAR y : BOOLEAN := F(1) & \"x\";",
        );
        assert!(matches!(e, LangError::Type { .. }));
    }

    #[test]
    fn maintained_override_consistency_is_enforced() {
        let e = fails(
            r#"
            TYPE A = OBJECT
            METHODS
                (*MAINTAINED*) m() : INTEGER := M1;
            END;
            TYPE B = A OBJECT
            OVERRIDES
                m := M2;
            END;
            PROCEDURE M1(a : A) : INTEGER = BEGIN RETURN 1; END M1;
            PROCEDURE M2(b : B) : INTEGER = BEGIN RETURN 2; END M2;
        "#,
        );
        assert!(matches!(e, LangError::Resolve { .. }), "{e}");
    }

    #[test]
    fn method_signature_mismatch_is_an_error() {
        let e = fails(
            r#"
            TYPE A = OBJECT
            METHODS
                m(x : INTEGER) : INTEGER := M1;
            END;
            PROCEDURE M1(a : A) : INTEGER = BEGIN RETURN 1; END M1;
        "#,
        );
        assert!(matches!(e, LangError::Type { .. }));
    }

    #[test]
    fn nil_is_assignable_to_objects_only() {
        ok(r#"
            TYPE A = OBJECT END;
            VAR a : A := NIL;
        "#);
        let e = fails("VAR x : INTEGER := NIL;");
        assert!(matches!(e, LangError::Type { .. }));
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(matches!(
            fails("VAR x : INTEGER; VAR x : INTEGER;"),
            LangError::Resolve { .. }
        ));
        assert!(matches!(
            fails("TYPE A = OBJECT END; TYPE A = OBJECT END;"),
            LangError::Resolve { .. }
        ));
    }

    #[test]
    fn supertype_must_be_declared_first() {
        let e = fails(
            r#"
            TYPE B = A OBJECT END;
            TYPE A = OBJECT END;
        "#,
        );
        assert!(matches!(e, LangError::Resolve { .. }));
    }

    #[test]
    fn subtype_arguments_are_accepted() {
        ok(r#"
            TYPE A = OBJECT END;
            TYPE B = A OBJECT END;
            PROCEDURE F(a : A) = BEGIN RETURN; END F;
            PROCEDURE G(b : B) = BEGIN F(b); END G;
        "#);
    }

    #[test]
    fn for_variable_is_scoped() {
        let e = fails(
            "PROCEDURE F() : INTEGER =
             BEGIN
                FOR i := 1 TO 3 DO Print(i); END;
                RETURN i;
             END F;",
        );
        assert!(matches!(e, LangError::Resolve { .. }));
    }

    #[test]
    fn array_types_intern_structurally() {
        let p = ok(r#"
            VAR a, b : ARRAY OF INTEGER;
            VAR c : ARRAY OF TEXT;
            VAR d : ARRAY OF ARRAY OF INTEGER;
            PROCEDURE F() =
            BEGIN a := b; END F;
        "#);
        assert_eq!(p.array_elems.len(), 3, "INTEGER, TEXT, ARRAY OF INTEGER");
    }

    #[test]
    fn array_type_errors() {
        let e = fails(
            "VAR a : ARRAY OF INTEGER; VAR b : ARRAY OF TEXT;
                       PROCEDURE F() = BEGIN a := b; END F;",
        );
        assert!(matches!(e, LangError::Type { .. }));
        let e = fails(
            "VAR a : ARRAY OF INTEGER;
                       PROCEDURE F() : INTEGER = BEGIN RETURN a[TRUE]; END F;",
        );
        assert!(matches!(e, LangError::Type { .. }));
        let e = fails("PROCEDURE F(x : INTEGER) : INTEGER = BEGIN RETURN x[0]; END F;");
        assert!(matches!(e, LangError::Type { .. }));
        let e = fails("PROCEDURE F(x : INTEGER) : INTEGER = BEGIN RETURN LEN(x); END F;");
        assert!(matches!(e, LangError::Type { .. }));
    }

    #[test]
    fn cached_pragma_marks_procedure() {
        let p = ok(r#"
            (*CACHED*) PROCEDURE F(n : INTEGER) : INTEGER =
            BEGIN RETURN n * 2; END F;
        "#);
        assert_eq!(
            p.procs[0].incremental,
            Some((IncrKind::Cached, Strategy::Demand))
        );
    }
}
