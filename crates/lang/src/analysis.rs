//! Static analysis limiting runtime checks (paper Section 6.1).
//!
//! "Each access, modify, and call operation … performs several checks to
//! determine whether or not a variable or procedure is involved in an
//! Alphonse computation. The uniform application of these tests would
//! result in a substantial performance decrease. We use dataflow analysis
//! to identify the many variables and procedures where the results of these
//! tests are statically known."
//!
//! The analysis computes, conservatively:
//!
//! * the set of procedures reachable from incremental procedures (dynamic
//!   method dispatch is approximated by "any method implementation");
//! * the top-level variables such procedures may touch — only accesses to
//!   those need instrumentation anywhere in the program;
//! * the field names such procedures may touch — likewise;
//! * the procedures/method slots whose calls can be incremental instances.

use crate::hir::{HExpr, HStmt, ProcId, Program};
use std::collections::HashSet;

/// Result of the Section 6.1 instrumentation analysis.
#[derive(Debug, Clone)]
pub struct Instrumentation {
    /// Procedures reachable from some incremental procedure (including the
    /// incremental procedures themselves).
    pub reachable: Vec<bool>,
    /// Globals that some reachable procedure reads or writes; only these
    /// need `access`/`modify` instrumentation.
    pub tracked_globals: Vec<bool>,
    /// Field names that some reachable procedure reads or writes.
    pub tracked_fields: HashSet<String>,
    /// Whether any reachable procedure touches array elements (arrays are
    /// tracked as a class, like fields).
    pub tracked_arrays: bool,
}

impl Instrumentation {
    /// Is an access to global `idx` statically known to be irrelevant?
    pub fn global_needs_check(&self, idx: usize) -> bool {
        self.tracked_globals[idx]
    }

    /// Does an access to a field of this name need instrumentation?
    pub fn field_needs_check(&self, name: &str) -> bool {
        self.tracked_fields.contains(name)
    }

    /// Number of procedures reachable from the Maintained portion.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|b| **b).count()
    }
}

/// Runs the analysis over a resolved program.
pub fn analyze(program: &Program) -> Instrumentation {
    // Conservative call graph: direct calls use the edge; a method call may
    // dispatch to any procedure installed as a method implementation.
    let method_impls: HashSet<ProcId> = program
        .types
        .iter()
        .flat_map(|t| t.methods.iter().map(|m| m.impl_proc))
        .collect();

    let mut reachable = vec![false; program.procs.len()];
    let mut work: Vec<ProcId> = program
        .procs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.incremental.is_some())
        .map(|(i, _)| i)
        .collect();
    for &p in &work {
        reachable[p] = true;
    }
    while let Some(p) = work.pop() {
        let mut targets = Vec::new();
        let mut uses_methods = false;
        for_each_expr(&program.procs[p], &mut |e| match e {
            HExpr::CallProc { proc, .. } => targets.push(*proc),
            HExpr::CallMethod { .. } => uses_methods = true,
            _ => {}
        });
        if uses_methods {
            targets.extend(method_impls.iter().copied());
        }
        for t in targets {
            if !reachable[t] {
                reachable[t] = true;
                work.push(t);
            }
        }
    }

    let mut tracked_globals = vec![false; program.globals.len()];
    let mut tracked_field_offsets: HashSet<usize> = HashSet::new();
    let mut tracked_arrays = false;
    for (pid, info) in program.procs.iter().enumerate() {
        if !reachable[pid] {
            continue;
        }
        for_each_expr(info, &mut |e| match e {
            HExpr::Global(i) => tracked_globals[*i] = true,
            HExpr::Field { field, .. } => {
                tracked_field_offsets.insert(*field);
            }
            HExpr::Index { .. } => tracked_arrays = true,
            _ => {}
        });
        for_each_stmt(info, &mut |s| match s {
            HStmt::AssignGlobal { index, .. } => tracked_globals[*index] = true,
            HStmt::AssignField { field, .. } => {
                tracked_field_offsets.insert(*field);
            }
            HStmt::AssignIndex { .. } => tracked_arrays = true,
            _ => {}
        });
    }
    // Offsets are only meaningful per type; conservatively mark every field
    // NAME that occupies a tracked offset in any type.
    let mut tracked_fields = HashSet::new();
    for t in &program.types {
        for (off, f) in t.fields.iter().enumerate() {
            if tracked_field_offsets.contains(&off) {
                tracked_fields.insert(f.name.clone());
            }
        }
    }

    Instrumentation {
        reachable,
        tracked_globals,
        tracked_fields,
        tracked_arrays,
    }
}

fn for_each_expr(info: &crate::hir::ProcInfo, f: &mut impl FnMut(&HExpr)) {
    fn walk_e(e: &HExpr, f: &mut impl FnMut(&HExpr)) {
        f(e);
        match e {
            HExpr::Field { obj, .. } => walk_e(obj, f),
            HExpr::CallProc { args, .. } | HExpr::CallBuiltin { args, .. } => {
                for a in args {
                    walk_e(a, f);
                }
            }
            HExpr::CallMethod { obj, args, .. } => {
                walk_e(obj, f);
                for a in args {
                    walk_e(a, f);
                }
            }
            HExpr::Unary { expr, .. } | HExpr::Unchecked(expr) => walk_e(expr, f),
            HExpr::NewArray { size, .. } => walk_e(size, f),
            HExpr::Index { arr, index } => {
                walk_e(arr, f);
                walk_e(index, f);
            }
            HExpr::Binary { lhs, rhs, .. } => {
                walk_e(lhs, f);
                walk_e(rhs, f);
            }
            _ => {}
        }
    }
    fn walk_s(s: &HStmt, f: &mut impl FnMut(&HExpr)) {
        match s {
            HStmt::AssignLocal { value, .. } | HStmt::AssignGlobal { value, .. } => {
                walk_e(value, f)
            }
            HStmt::AssignField { obj, value, .. } => {
                walk_e(obj, f);
                walk_e(value, f);
            }
            HStmt::AssignIndex { arr, index, value } => {
                walk_e(arr, f);
                walk_e(index, f);
                walk_e(value, f);
            }
            HStmt::If { arms, else_body } => {
                for (c, b) in arms {
                    walk_e(c, f);
                    for s in b {
                        walk_s(s, f);
                    }
                }
                for s in else_body {
                    walk_s(s, f);
                }
            }
            HStmt::While { cond, body } => {
                walk_e(cond, f);
                for s in body {
                    walk_s(s, f);
                }
            }
            HStmt::For {
                from, to, by, body, ..
            } => {
                walk_e(from, f);
                walk_e(to, f);
                if let Some(b) = by {
                    walk_e(b, f);
                }
                for s in body {
                    walk_s(s, f);
                }
            }
            HStmt::Return(Some(e)) | HStmt::Expr(e) => walk_e(e, f),
            HStmt::Return(None) => {}
        }
    }
    for (_, _, init) in &info.local_inits {
        if let Some(e) = init {
            walk_e(e, f);
        }
    }
    for s in &info.body {
        walk_s(s, f);
    }
}

fn for_each_stmt(info: &crate::hir::ProcInfo, f: &mut impl FnMut(&HStmt)) {
    fn walk(s: &HStmt, f: &mut impl FnMut(&HStmt)) {
        f(s);
        match s {
            HStmt::If { arms, else_body } => {
                for (_, b) in arms {
                    for s in b {
                        walk(s, f);
                    }
                }
                for s in else_body {
                    walk(s, f);
                }
            }
            HStmt::While { body, .. } | HStmt::For { body, .. } => {
                for s in body {
                    walk(s, f);
                }
            }
            _ => {}
        }
    }
    for s in &info.body {
        walk(s, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;

    fn analyzed(src: &str) -> (Program, Instrumentation) {
        let p = resolve(&parse(src).unwrap()).unwrap();
        let a = analyze(&p);
        (p, a)
    }

    #[test]
    fn mutator_only_globals_are_untracked() {
        let (p, a) = analyzed(
            r#"
            VAR used, unused : INTEGER;
            (*CACHED*) PROCEDURE F(x : INTEGER) : INTEGER =
            BEGIN RETURN used + x; END F;
            PROCEDURE Mutator() =
            BEGIN unused := unused + 1; END Mutator;
            "#,
        );
        assert!(a.global_needs_check(p.global_by_name["used"]));
        assert!(!a.global_needs_check(p.global_by_name["unused"]));
        assert_eq!(a.reachable_count(), 1);
    }

    #[test]
    fn helpers_called_from_incremental_procs_are_reachable() {
        let (p, a) = analyzed(
            r#"
            VAR g : INTEGER;
            PROCEDURE Helper() : INTEGER =
            BEGIN RETURN g; END Helper;
            (*CACHED*) PROCEDURE F(x : INTEGER) : INTEGER =
            BEGIN RETURN Helper() + x; END F;
            PROCEDURE Unrelated() : INTEGER =
            BEGIN RETURN 0; END Unrelated;
            "#,
        );
        assert!(a.reachable[p.proc_by_name["Helper"]]);
        assert!(a.reachable[p.proc_by_name["F"]]);
        assert!(!a.reachable[p.proc_by_name["Unrelated"]]);
        assert!(a.global_needs_check(p.global_by_name["g"]), "via Helper");
    }

    #[test]
    fn fields_touched_by_maintained_methods_are_tracked() {
        let (_p, a) = analyzed(
            r#"
            TYPE T = OBJECT
                seen, hidden : INTEGER;
            METHODS
                (*MAINTAINED*) m() : INTEGER := M;
            END;
            PROCEDURE M(t : T) : INTEGER =
            BEGIN RETURN t.seen; END M;
            "#,
        );
        assert!(a.field_needs_check("seen"));
        assert!(!a.field_needs_check("hidden"));
    }

    #[test]
    fn no_incremental_procs_means_nothing_tracked() {
        let (_p, a) = analyzed(
            r#"
            VAR g : INTEGER;
            PROCEDURE F() : INTEGER = BEGIN RETURN g; END F;
            "#,
        );
        assert_eq!(a.reachable_count(), 0);
        assert!(!a.global_needs_check(0));
    }

    #[test]
    fn method_dispatch_is_conservative() {
        // A non-incremental method impl is still reachable because the
        // cached procedure performs *some* method call.
        let (p, a) = analyzed(
            r#"
            TYPE T = OBJECT
                x : INTEGER;
            METHODS
                plain() : INTEGER := Plain;
            END;
            PROCEDURE Plain(t : T) : INTEGER = BEGIN RETURN t.x; END Plain;
            (*CACHED*) PROCEDURE F(t : T) : INTEGER =
            BEGIN RETURN t.plain(); END F;
            "#,
        );
        assert!(a.reachable[p.proc_by_name["Plain"]]);
        assert!(a.field_needs_check("x"));
    }
}
