//! Static analysis limiting runtime checks (paper Section 6.1).
//!
//! "Each access, modify, and call operation … performs several checks to
//! determine whether or not a variable or procedure is involved in an
//! Alphonse computation. The uniform application of these tests would
//! result in a substantial performance decrease. We use dataflow analysis
//! to identify the many variables and procedures where the results of these
//! tests are statically known."
//!
//! This module is a thin client of the effect-inference engine
//! ([`crate::effects`]): it projects the effect table down to the decision
//! the instrumentation sites need — *does this access require a runtime
//! check?* A location needs checks exactly when some procedure that can
//! execute in a *recording* frame performs a **checked read** of it:
//! dependence nodes are only ever created by such reads, so a location no
//! recording-capable procedure checked-reads can never have nodes hanging
//! off it, and both its reads and its writes may take the uninstrumented
//! fast path. (Two successive sharpenings over the naive read∪write
//! criterion: write-only locations are untracked, and so are locations
//! read only by procedures reachable *solely through `(*UNCHECKED*)`
//! region calls* — such procedures always run in a suppressed frame, so
//! even their checked-syntax reads record nothing.)
//!
//! The table also exposes which procedures are pure combinators: calls to a
//! pure `(*CACHED*)` procedure need no `R(p)` global encoding and record no
//! dependence on the callee's instance, because no state change can ever
//! invalidate it.

use crate::effects::{infer, EffectTable};
use crate::hir::Program;
use std::collections::HashSet;

/// Result of the Section 6.1 instrumentation analysis.
#[derive(Debug, Clone)]
pub struct Instrumentation {
    /// Procedures reachable from some incremental procedure (including the
    /// incremental procedures themselves).
    pub reachable: Vec<bool>,
    /// Globals that some reachable procedure checked-reads; only these need
    /// `access`/`modify` instrumentation.
    pub tracked_globals: Vec<bool>,
    /// Field names that some reachable procedure checked-reads.
    pub tracked_fields: HashSet<String>,
    /// Field offsets that some reachable procedure checked-reads — the
    /// offset-indexed view used by the interpreter. This is sharper than
    /// the name-based view: a name is tracked if *any* type binds it at a
    /// tracked offset, while an offset is tracked only if actually read.
    pub tracked_field_offsets: Vec<bool>,
    /// Whether any reachable procedure checked-reads array elements (arrays
    /// are tracked as a class, like fields).
    pub tracked_arrays: bool,
    /// Procedures proven to be pure combinators (see [`crate::effects`]).
    pub pure_procs: Vec<bool>,
}

impl Instrumentation {
    /// Is an access to global `idx` statically known to be irrelevant?
    pub fn global_needs_check(&self, idx: usize) -> bool {
        self.tracked_globals[idx]
    }

    /// Does an access to a field of this name need instrumentation?
    pub fn field_needs_check(&self, name: &str) -> bool {
        self.tracked_fields.contains(name)
    }

    /// Does an access to a field at this flattened offset need
    /// instrumentation?
    pub fn field_offset_needs_check(&self, offset: usize) -> bool {
        self.tracked_field_offsets
            .get(offset)
            .copied()
            .unwrap_or(false)
    }

    /// Number of procedures reachable from the Maintained portion.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|b| **b).count()
    }
}

/// Runs the analysis over a resolved program.
pub fn analyze(program: &Program) -> Instrumentation {
    analyze_with(program, &infer(program))
}

/// Runs the analysis over a resolved program, reusing an already-computed
/// effect table.
pub fn analyze_with(program: &Program, effects: &EffectTable) -> Instrumentation {
    let mut tracked_globals = vec![false; program.globals.len()];
    let max_fields = program
        .types
        .iter()
        .map(|t| t.fields.len())
        .max()
        .unwrap_or(0);
    let mut tracked_field_offsets = vec![false; max_fields];
    let mut tracked_arrays = false;

    for (pid, facts) in effects.facts.iter().enumerate() {
        // `recording_reachable`, not `reachable`: a procedure reachable
        // only through region calls executes suppressed, so its reads can
        // never create dependence nodes (see [`crate::effects`]).
        if !effects.recording_reachable[pid] {
            continue;
        }
        for &g in &facts.direct.reads_globals {
            tracked_globals[g] = true;
        }
        for &f in &facts.direct.reads_fields {
            tracked_field_offsets[f] = true;
        }
        tracked_arrays |= facts.direct.reads_arrays;
    }

    // Offsets are only meaningful per type; the name-based transform must
    // conservatively wrap every field NAME that occupies a tracked offset
    // in any type. (Dependence nodes live on (object, offset) slots, so
    // the interpreter's offset view stays sharp: an access at an unread
    // offset can never hit a node, whatever the field is called.)
    let mut tracked_fields: HashSet<String> = HashSet::new();
    for t in &program.types {
        for (off, f) in t.fields.iter().enumerate() {
            if tracked_field_offsets[off] {
                tracked_fields.insert(f.name.clone());
            }
        }
    }

    Instrumentation {
        reachable: effects.reachable.clone(),
        tracked_globals,
        tracked_fields,
        tracked_field_offsets,
        tracked_arrays,
        pure_procs: effects.pure_procs.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;

    fn analyzed(src: &str) -> (Program, Instrumentation) {
        let p = resolve(&parse(src).unwrap()).unwrap();
        let a = analyze(&p);
        (p, a)
    }

    #[test]
    fn mutator_only_globals_are_untracked() {
        let (p, a) = analyzed(
            r#"
            VAR used, unused : INTEGER;
            (*CACHED*) PROCEDURE F(x : INTEGER) : INTEGER =
            BEGIN RETURN used + x; END F;
            PROCEDURE Mutator() =
            BEGIN unused := unused + 1; END Mutator;
            "#,
        );
        assert!(a.global_needs_check(p.global_by_name["used"]));
        assert!(!a.global_needs_check(p.global_by_name["unused"]));
        assert_eq!(a.reachable_count(), 1);
    }

    #[test]
    fn helpers_called_from_incremental_procs_are_reachable() {
        let (p, a) = analyzed(
            r#"
            VAR g : INTEGER;
            PROCEDURE Helper() : INTEGER =
            BEGIN RETURN g; END Helper;
            (*CACHED*) PROCEDURE F(x : INTEGER) : INTEGER =
            BEGIN RETURN Helper() + x; END F;
            PROCEDURE Unrelated() : INTEGER =
            BEGIN RETURN 0; END Unrelated;
            "#,
        );
        assert!(a.reachable[p.proc_by_name["Helper"]]);
        assert!(a.reachable[p.proc_by_name["F"]]);
        assert!(!a.reachable[p.proc_by_name["Unrelated"]]);
        assert!(a.global_needs_check(p.global_by_name["g"]), "via Helper");
    }

    #[test]
    fn fields_touched_by_maintained_methods_are_tracked() {
        let (_p, a) = analyzed(
            r#"
            TYPE T = OBJECT
                seen, hidden : INTEGER;
            METHODS
                (*MAINTAINED*) m() : INTEGER := M;
            END;
            PROCEDURE M(t : T) : INTEGER =
            BEGIN RETURN t.seen; END M;
            "#,
        );
        assert!(a.field_needs_check("seen"));
        assert!(!a.field_needs_check("hidden"));
        assert!(a.field_offset_needs_check(0));
        assert!(!a.field_offset_needs_check(1));
    }

    #[test]
    fn no_incremental_procs_means_nothing_tracked() {
        let (_p, a) = analyzed(
            r#"
            VAR g : INTEGER;
            PROCEDURE F() : INTEGER = BEGIN RETURN g; END F;
            "#,
        );
        assert_eq!(a.reachable_count(), 0);
        assert!(!a.global_needs_check(0));
    }

    #[test]
    fn method_dispatch_is_conservative() {
        // A non-incremental method impl is still reachable because the
        // cached procedure dispatches a method of that name.
        let (p, a) = analyzed(
            r#"
            TYPE T = OBJECT
                x : INTEGER;
            METHODS
                plain() : INTEGER := Plain;
            END;
            PROCEDURE Plain(t : T) : INTEGER = BEGIN RETURN t.x; END Plain;
            (*CACHED*) PROCEDURE F(t : T) : INTEGER =
            BEGIN RETURN t.plain(); END F;
            "#,
        );
        assert!(a.reachable[p.proc_by_name["Plain"]]);
        assert!(a.field_needs_check("x"));
    }

    #[test]
    fn write_only_locations_take_the_fast_path() {
        // `sink` is written by a reachable procedure but never checked-read
        // by one: no dependence node can ever be created for it, so even
        // its writes need no instrumentation.
        let (p, a) = analyzed(
            r#"
            VAR src, sink : INTEGER;
            (*CACHED*) PROCEDURE F() : INTEGER =
            BEGIN sink := src; RETURN src; END F;
            "#,
        );
        assert!(a.global_needs_check(p.global_by_name["src"]));
        assert!(!a.global_needs_check(p.global_by_name["sink"]));
    }

    #[test]
    fn pure_combinators_are_identified() {
        let (p, a) = analyzed(
            r#"
            VAR g : INTEGER;
            (*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
            BEGIN
                IF n < 2 THEN RETURN n; END;
                RETURN Fib(n - 1) + Fib(n - 2);
            END Fib;
            (*CACHED*) PROCEDURE Scaled(n : INTEGER) : INTEGER =
            BEGIN RETURN n * g; END Scaled;
            "#,
        );
        assert!(a.pure_procs[p.proc_by_name["Fib"]]);
        assert!(!a.pure_procs[p.proc_by_name["Scaled"]]);
    }

    #[test]
    fn region_only_reachable_reads_stay_untracked() {
        // `Hidden` is reachable, but only through an `(*UNCHECKED*)` region
        // call, so it always executes in a suppressed frame: its read of
        // `shadow` can never create a dependence node and `shadow` takes
        // the fast path. `lit` is read by the root itself and stays tracked.
        let (p, a) = analyzed(
            r#"
            VAR lit, shadow : INTEGER;
            PROCEDURE Hidden() : INTEGER =
            BEGIN RETURN shadow; END Hidden;
            (*CACHED*) PROCEDURE F() : INTEGER =
            BEGIN RETURN lit + (*UNCHECKED*) Hidden(); END F;
            "#,
        );
        assert!(a.reachable[p.proc_by_name["Hidden"]], "still reachable");
        assert!(a.global_needs_check(p.global_by_name["lit"]));
        assert!(
            !a.global_needs_check(p.global_by_name["shadow"]),
            "suppressed-only readers eliminate the check"
        );
    }

    #[test]
    fn field_names_are_conservative_but_offsets_stay_sharp() {
        // `val` sits at offset 0 in A (read by the cached procedure) and at
        // offset 1 in B (never read by reachable code). The name view must
        // wrap every `x.val` — and drags in `pad`, which shares the tracked
        // offset — while the offset view keeps offset 1 on the fast path:
        // nodes live on (object, offset) slots, and no read ever touches a
        // B-object slot at offset 1 in tracked context.
        let (_p, a) = analyzed(
            r#"
            TYPE A = OBJECT val : INTEGER; END;
            TYPE B = OBJECT pad : INTEGER; val : INTEGER; END;
            (*CACHED*) PROCEDURE F(a : A) : INTEGER =
            BEGIN RETURN a.val; END F;
            "#,
        );
        assert!(a.field_needs_check("val"));
        assert!(a.field_needs_check("pad"), "shares offset 0 with A.val");
        assert!(a.field_offset_needs_check(0));
        assert!(!a.field_offset_needs_check(1), "offset view stays sharp");
    }
}
