//! Surface abstract syntax of Alphonse-L.
//!
//! This is the tree the parser produces and the unparser prints. It is
//! name-based; the resolver lowers it to the executable HIR (see
//! [`crate::hir`]). The Alphonse program transformation (Section 5 of the
//! paper) is expressed as a rewrite over this surface syntax so the
//! transformed program can be unparsed and inspected, exactly like the
//! paper's Algorithm 2 example.

use crate::token::{Pragma, Span};

/// A whole Alphonse-L compilation unit: a sequence of declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `TYPE Name = [Super] OBJECT … END;`
    Type(TypeDecl),
    /// `PROCEDURE Name(…) [: T] = [VAR …] BEGIN … END Name;`
    Proc(ProcDecl),
    /// `VAR a, b : T [:= e];` at top level.
    Global(GlobalDecl),
}

/// An object type declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// Declared type name.
    pub name: String,
    /// Supertype name, if any (single inheritance).
    pub parent: Option<String>,
    /// New fields introduced by this type.
    pub fields: Vec<FieldDecl>,
    /// New methods introduced by this type.
    pub methods: Vec<MethodDecl>,
    /// Overrides of inherited methods.
    pub overrides: Vec<OverrideDecl>,
    /// Source position.
    pub span: Span,
}

/// One field group: `a, b : T;`.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field names declared by this group.
    pub names: Vec<String>,
    /// Their common type.
    pub ty: TypeExpr,
}

/// A method declaration: `[pragma] m(params) [: T] := ImplProc;`.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// `(*MAINTAINED*)` pragma, if present.
    pub pragma: Option<Pragma>,
    /// Method name.
    pub name: String,
    /// Parameters (the receiver is implicit).
    pub params: Vec<Param>,
    /// Return type, if the method is a function.
    pub ret: Option<TypeExpr>,
    /// Name of the top-level procedure implementing the method.
    pub impl_proc: String,
    /// Source position.
    pub span: Span,
}

/// An override: `[pragma] m := ImplProc;`.
#[derive(Debug, Clone, PartialEq)]
pub struct OverrideDecl {
    /// `(*MAINTAINED*)` pragma, if present.
    pub pragma: Option<Pragma>,
    /// Name of the inherited method being overridden.
    pub name: String,
    /// Name of the replacement implementation procedure.
    pub impl_proc: String,
    /// Source position.
    pub span: Span,
}

/// A procedure declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDecl {
    /// `(*CACHED*)` pragma, if present.
    pub pragma: Option<Pragma>,
    /// Procedure name.
    pub name: String,
    /// Value parameters.
    pub params: Vec<Param>,
    /// Return type for function procedures.
    pub ret: Option<TypeExpr>,
    /// Local variable declarations (`VAR …` before `BEGIN`).
    pub locals: Vec<LocalDecl>,
    /// Statement list of the body.
    pub body: Vec<Stmt>,
    /// Source position.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: TypeExpr,
}

/// A local variable group.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDecl {
    /// Names declared by this group.
    pub names: Vec<String>,
    /// Their common type.
    pub ty: TypeExpr,
    /// Optional initializer (applied to every name in the group).
    pub init: Option<Expr>,
}

/// A top-level variable group.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Names declared by this group.
    pub names: Vec<String>,
    /// Their common type.
    pub ty: TypeExpr,
    /// Optional initializer (a constant expression).
    pub init: Option<Expr>,
    /// Source position.
    pub span: Span,
}

/// A type expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `INTEGER`
    Integer,
    /// `BOOLEAN`
    Boolean,
    /// `TEXT`
    Text,
    /// A declared object type.
    Named(String),
    /// `ARRAY OF T` — a heap-allocated array reference (the paper's
    /// spreadsheet, Algorithm 10, keeps its `Cell` objects in one).
    Array(Box<TypeExpr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target := expr;` — target must be a variable or field designator.
    Assign {
        /// Assignment target ([`Expr::Var`] or [`Expr::Field`]).
        target: Expr,
        /// Value.
        value: Expr,
        /// Source position.
        span: Span,
    },
    /// `IF … THEN … {ELSIF … THEN …} [ELSE …] END;`
    If {
        /// `(condition, body)` arms: the `IF` arm followed by `ELSIF` arms.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// `ELSE` body (possibly empty).
        else_body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `WHILE cond DO … END;`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `FOR i := a TO b [BY s] DO … END;`
    For {
        /// Loop variable (declared by the loop, scoped to its body).
        var: String,
        /// Start value.
        from: Expr,
        /// Inclusive end value.
        to: Expr,
        /// Step (default 1).
        by: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `RETURN [expr];`
    Return {
        /// Returned value for function procedures.
        value: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// An expression evaluated for its effects (must be a call).
    Expr {
        /// The call expression.
        expr: Expr,
        /// Source position.
        span: Span,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `DIV`
    Div,
    /// `MOD`
    Mod,
    /// `&` (text concatenation)
    Concat,
    /// `=`
    Eq,
    /// `#`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND` (short-circuit)
    And,
    /// `OR` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// What a call invokes.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// A top-level procedure (or builtin) by name: `f(args)`.
    Proc(String),
    /// A method on an object: `obj.m(args)`. The receiver may be any
    /// expression — the paper chains calls like `RotateRight(t).balance()`.
    Method {
        /// Receiver expression.
        obj: Box<Expr>,
        /// Method name.
        name: String,
    },
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Text literal.
    Text(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// `NIL`.
    Nil,
    /// A variable read (local, parameter, or global).
    Var {
        /// Variable name.
        name: String,
        /// Source position.
        span: Span,
    },
    /// A field read `obj.f`.
    Field {
        /// Object expression.
        obj: Box<Expr>,
        /// Field name.
        name: String,
        /// Source position.
        span: Span,
    },
    /// A procedure or method call.
    Call {
        /// What is being invoked.
        callee: Callee,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source position.
        span: Span,
    },
    /// `NEW(TypeName)`.
    New {
        /// The object type to allocate.
        type_name: String,
        /// Source position.
        span: Span,
    },
    /// `NEW(ARRAY OF T, size)` — allocates a default-initialized array.
    NewArray {
        /// Element type.
        elem: TypeExpr,
        /// Number of elements.
        size: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// An array element read `a[i]`.
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `(*UNCHECKED*) expr` — dependence recording suppressed
    /// (Section 6.4).
    Unchecked {
        /// The expression whose reads go unrecorded.
        expr: Box<Expr>,
        /// Position of the pragma itself.
        span: Span,
    },
}

impl Expr {
    /// Source position of the expression, where known.
    ///
    /// Literals carry no span; for compound expressions without one of
    /// their own, the position of the first spanned operand is used — and,
    /// unlike the old `line()` accessor, a spanless left operand falls
    /// through to the right one instead of reporting "unknown".
    pub fn span(&self) -> Option<Span> {
        match self {
            Expr::Var { span, .. }
            | Expr::Field { span, .. }
            | Expr::Call { span, .. }
            | Expr::New { span, .. }
            | Expr::NewArray { span, .. }
            | Expr::Index { span, .. }
            | Expr::Unchecked { span, .. } => Some(*span),
            Expr::Unary { expr, .. } => expr.span(),
            Expr::Binary { lhs, rhs, .. } => lhs.span().or_else(|| rhs.span()),
            _ => None,
        }
    }

    /// Source line of the expression, where known.
    pub fn line(&self) -> Option<u32> {
        self.span().map(|s| s.line)
    }
}
