//! Resolved, executable representation of an Alphonse-L program.
//!
//! The resolver lowers the surface AST into this form: names become dense
//! indices (type ids, procedure ids, global indices, local slots, field
//! offsets, method slots), inheritance is flattened, and pragmas are
//! attached to the procedures they make incremental.

use crate::ast::{BinOp, UnOp};
use crate::token::Span;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Index of a declared object type.
pub type TypeId = usize;
/// Index of a top-level procedure.
pub type ProcId = usize;
/// Index of an interned array type (see [`Program::array_elems`]).
pub type ArrayTyId = usize;

/// A resolved type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// `INTEGER`
    Integer,
    /// `BOOLEAN`
    Boolean,
    /// `TEXT`
    Text,
    /// A declared object type.
    Object(TypeId),
    /// `ARRAY OF T`, interned structurally.
    Array(ArrayTyId),
}

/// Evaluation strategy resolved from a pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Lazy update on call.
    #[default]
    Demand,
    /// Update during change propagation.
    Eager,
}

/// How a procedure participates in incremental computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrKind {
    /// Marked `(*CACHED*)` directly.
    Cached,
    /// Implements a `(*MAINTAINED*)` method.
    Maintained,
}

/// A field of an object type (inherited fields flattened in).
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
}

/// One method slot of an object type, with the implementation this type
/// dispatches to.
#[derive(Debug, Clone)]
pub struct MethodImpl {
    /// Method name.
    pub name: String,
    /// Parameter types (receiver excluded).
    pub params: Vec<Ty>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Whether the method is `(*MAINTAINED*)` (consistent across the
    /// hierarchy; checked by the resolver).
    pub maintained: bool,
    /// Position of the declaring `METHODS` entry (not of overrides).
    pub span: Span,
    /// The implementing procedure for this type.
    pub impl_proc: ProcId,
}

/// A resolved object type.
#[derive(Debug, Clone)]
pub struct TypeInfo {
    /// Declared name.
    pub name: String,
    /// Supertype, if any.
    pub parent: Option<TypeId>,
    /// This type followed by all its ancestors, nearest first.
    pub ancestry: Vec<TypeId>,
    /// All fields, inherited first, in slot order.
    pub fields: Vec<FieldInfo>,
    /// All method slots, inherited first; overrides replace `impl_proc`.
    pub methods: Vec<MethodImpl>,
}

/// A resolved top-level variable.
#[derive(Debug, Clone)]
pub struct GlobalInfo {
    /// Declared name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Optional initializer, run at program start.
    pub init: Option<HExpr>,
}

/// A resolved procedure.
#[derive(Debug, Clone)]
pub struct ProcInfo {
    /// Declared name.
    pub name: String,
    /// `Some` if calls to this procedure are incremental instances
    /// (paper Section 3.3), with the evaluation strategy.
    pub incremental: Option<(IncrKind, Strategy)>,
    /// LRU cache capacity from a `(*CACHED LRU n*)` pragma.
    pub cache_capacity: Option<usize>,
    /// Parameter names and types. Parameters occupy frame slots `0..n`.
    pub params: Vec<(String, Ty)>,
    /// Return type for function procedures.
    pub ret: Option<Ty>,
    /// Total frame slots (params + locals + FOR variables).
    pub frame_size: usize,
    /// Local initializers: (slot, type, optional expression).
    pub local_inits: Vec<(usize, Ty, Option<HExpr>)>,
    /// Body statements.
    pub body: Vec<HStmt>,
    /// Position of the `PROCEDURE` declaration.
    pub span: Span,
}

/// Built-in procedures of the base language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `MAX(a, b)` on integers (used by the paper's Height).
    Max,
    /// `MIN(a, b)` on integers.
    Min,
    /// `ABS(a)` on integers.
    Abs,
    /// `Print(x)` — appends to the program's output stream. Models the
    /// paper's "concatenation to a top-level stream variable".
    Print,
    /// `LEN(a)` — number of elements of an array.
    Len,
}

/// A resolved expression.
#[derive(Debug, Clone)]
pub enum HExpr {
    /// Integer literal.
    Int(i64),
    /// Text literal.
    Text(Arc<str>),
    /// Boolean literal.
    Bool(bool),
    /// `NIL`.
    Nil,
    /// Read of a frame slot (parameter, local, FOR variable).
    Local(usize),
    /// Read of a top-level variable.
    Global(usize),
    /// Read of `obj.field` (by flattened field offset).
    Field {
        /// Receiver.
        obj: Box<HExpr>,
        /// Field offset.
        field: usize,
    },
    /// Call of a top-level procedure.
    CallProc {
        /// Callee.
        proc: ProcId,
        /// Arguments.
        args: Vec<HExpr>,
    },
    /// Dynamically dispatched method call.
    CallMethod {
        /// Position of the call site.
        span: Span,
        /// Method name (slot indices are only meaningful within one type
        /// hierarchy; the static analyses match dispatch targets by name).
        name: Arc<str>,
        /// Receiver.
        obj: Box<HExpr>,
        /// Method slot (valid for the receiver's static type and all
        /// subtypes).
        slot: usize,
        /// Arguments (receiver excluded).
        args: Vec<HExpr>,
    },
    /// Call of a built-in.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Arguments.
        args: Vec<HExpr>,
    },
    /// `NEW(T)`.
    New(TypeId),
    /// `NEW(ARRAY OF T, size)`.
    NewArray {
        /// Element type.
        elem: Ty,
        /// Element count.
        size: Box<HExpr>,
    },
    /// Array element read `a[i]`.
    Index {
        /// Array expression.
        arr: Box<HExpr>,
        /// Index expression.
        index: Box<HExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<HExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<HExpr>,
        /// Right operand.
        rhs: Box<HExpr>,
    },
    /// Expression whose dependence recording is suppressed (Section 6.4).
    Unchecked {
        /// The expression whose reads go unrecorded.
        expr: Box<HExpr>,
        /// Position of the pragma.
        span: Span,
    },
}

/// A resolved statement.
#[derive(Debug, Clone)]
pub enum HStmt {
    /// Assignment to a frame slot.
    AssignLocal {
        /// Target slot.
        slot: usize,
        /// Value.
        value: HExpr,
    },
    /// Assignment to a top-level variable.
    AssignGlobal {
        /// Position of the assignment.
        span: Span,
        /// Target global index.
        index: usize,
        /// Value.
        value: HExpr,
    },
    /// Assignment to an array element.
    AssignIndex {
        /// Position of the assignment.
        span: Span,
        /// Array expression.
        arr: HExpr,
        /// Index expression.
        index: HExpr,
        /// Value.
        value: HExpr,
    },
    /// Assignment to an object field.
    AssignField {
        /// Position of the assignment.
        span: Span,
        /// Receiver.
        obj: HExpr,
        /// Field offset.
        field: usize,
        /// Value.
        value: HExpr,
    },
    /// Conditional.
    If {
        /// `(condition, body)` arms.
        arms: Vec<(HExpr, Vec<HStmt>)>,
        /// `ELSE` body.
        else_body: Vec<HStmt>,
    },
    /// `WHILE` loop.
    While {
        /// Condition.
        cond: HExpr,
        /// Body.
        body: Vec<HStmt>,
    },
    /// `FOR` loop.
    For {
        /// Frame slot of the loop variable.
        slot: usize,
        /// Start value.
        from: HExpr,
        /// Inclusive end.
        to: HExpr,
        /// Step (default 1).
        by: Option<HExpr>,
        /// Body.
        body: Vec<HStmt>,
    },
    /// `RETURN`.
    Return(Option<HExpr>),
    /// Call evaluated for effect.
    Expr(HExpr),
}

/// A fully resolved Alphonse-L program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Object types, in declaration order.
    pub types: Vec<TypeInfo>,
    /// Procedures, in declaration order.
    pub procs: Vec<ProcInfo>,
    /// Top-level variables, in declaration order.
    pub globals: Vec<GlobalInfo>,
    /// Name lookup for types.
    pub type_by_name: HashMap<String, TypeId>,
    /// Name lookup for procedures.
    pub proc_by_name: HashMap<String, ProcId>,
    /// Name lookup for globals.
    pub global_by_name: HashMap<String, usize>,
    /// Element types of interned array types, indexed by [`ArrayTyId`].
    pub array_elems: Vec<Ty>,
    /// Per-procedure static strata from the abstract dependency graph's
    /// SCC condensation, computed by the first Alphonse-mode interpreter
    /// built from this program and shared by all later ones (the analysis
    /// is a pure function of the program, so interpreter construction
    /// stays cheap when programs are instantiated repeatedly).
    pub(crate) static_heights: OnceLock<Vec<u32>>,
}

impl Program {
    /// Element type of the interned array type `a`.
    pub fn array_elem(&self, a: ArrayTyId) -> Ty {
        self.array_elems[a]
    }

    /// Returns `true` if `sub` is `sup` or a descendant of it.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        self.types[sub].ancestry.contains(&sup)
    }

    /// Looks up a method slot by name on `ty` (inherited slots included).
    pub fn method_slot(&self, ty: TypeId, name: &str) -> Option<usize> {
        self.types[ty].methods.iter().position(|m| m.name == name)
    }

    /// Looks up a field offset by name on `ty` (inherited fields included).
    pub fn field_offset(&self, ty: TypeId, name: &str) -> Option<usize> {
        self.types[ty].fields.iter().position(|f| f.name == name)
    }

    /// Number of incremental procedures (cached or maintained).
    pub fn incremental_proc_count(&self) -> usize {
        self.procs
            .iter()
            .filter(|p| p.incremental.is_some())
            .count()
    }
}
