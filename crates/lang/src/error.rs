//! Errors produced by the Alphonse-L pipeline.

use std::fmt;

/// Any error from lexing, parsing, resolution, type checking or execution
/// of an Alphonse-L program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error (bad character, unterminated comment/string, …).
    Lex {
        /// 1-based source line.
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based source line.
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// Name-resolution or declaration error.
    Resolve {
        /// Human-readable description.
        message: String,
    },
    /// Static type error.
    Type {
        /// Human-readable description.
        message: String,
    },
    /// Runtime error during interpretation (NIL dereference, fuel
    /// exhaustion, missing RETURN, …).
    Runtime {
        /// Human-readable description.
        message: String,
    },
}

impl LangError {
    pub(crate) fn lex(line: u32, message: impl Into<String>) -> Self {
        LangError::Lex {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn parse(line: u32, message: impl Into<String>) -> Self {
        LangError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn resolve(message: impl Into<String>) -> Self {
        LangError::Resolve {
            message: message.into(),
        }
    }

    pub(crate) fn ty(message: impl Into<String>) -> Self {
        LangError::Type {
            message: message.into(),
        }
    }

    pub(crate) fn runtime(message: impl Into<String>) -> Self {
        LangError::Runtime {
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, message } => write!(f, "lex error (line {line}): {message}"),
            LangError::Parse { line, message } => {
                write!(f, "parse error (line {line}): {message}")
            }
            LangError::Resolve { message } => write!(f, "resolve error: {message}"),
            LangError::Type { message } => write!(f, "type error: {message}"),
            LangError::Runtime { message } => write!(f, "runtime error: {message}"),
        }
    }
}

impl std::error::Error for LangError {}

/// Convenient result alias for the pipeline.
pub type Result<T> = std::result::Result<T, LangError>;
