//! **Alphonse-L** — the language half of the Alphonse reproduction
//! (Hoover, PLDI 1992).
//!
//! The paper presents Alphonse as a *program transformation system* over an
//! imperative object-oriented base language (Modula-3 in the paper's
//! implementation, Section 8). This crate provides the full pipeline for a
//! Modula-3-flavoured base language:
//!
//! 1. [`lex`] / [`parse`] — front end, with the Alphonse pragmas
//!    (`(*MAINTAINED*)`, `(*CACHED*)`, `(*UNCHECKED*)`) recognized inside
//!    comments so that every base-language program is a valid Alphonse-L
//!    program (Section 3).
//! 2. [`resolve`] — name resolution, inheritance flattening, and static type
//!    checking, enforcing the pragma discipline of Section 3.3.
//! 3. [`transform`](transform()) — the source-to-source rewrite of Section 5
//!    (Algorithm 2): reads become `access`, writes become `modify`, calls
//!    become `call`, with the static-check elimination of Section 6.1.
//! 4. [`unparse`] — prints surface syntax, including transformed programs.
//! 5. [`Interp`] — executes a program either conventionally (exhaustive) or
//!    incrementally through the `alphonse` runtime; Theorem 5.1 says the two
//!    agree, and this repository's differential tests check exactly that.
//!
//! # Example
//!
//! ```
//! use alphonse_lang::{compile, Interp, Mode, Val};
//!
//! let program = compile(r#"
//!     VAR base : INTEGER := 10;
//!     (*CACHED*) PROCEDURE Scaled(k : INTEGER) : INTEGER =
//!     BEGIN RETURN base * k; END Scaled;
//! "#).unwrap();
//!
//! let interp = Interp::new(program, Mode::Alphonse).unwrap();
//! assert_eq!(interp.call("Scaled", vec![Val::Int(3)]).unwrap(), Val::Int(30));
//! interp.set_global("base", Val::Int(100)).unwrap();          // mutator change
//! assert_eq!(interp.call("Scaled", vec![Val::Int(3)]).unwrap(), Val::Int(300));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod depgraph;
pub mod diag;
pub mod effects;
mod error;
mod heap;
pub mod hir;
mod interp;
mod lexer;
pub mod lints;
mod parser;
mod resolve;
pub mod token;
mod transform;
mod unparse;
mod value;

pub use error::{LangError, Result};
pub use interp::{Interp, Mode};
pub use lexer::lex;
pub use parser::parse;
pub use resolve::resolve;
pub use transform::{transform, TransformOptions, TransformReport};
pub use unparse::{expr_str, unparse};
pub use value::{ObjId, Val};

use std::sync::Arc;

/// Front-end pipeline: lex, parse, resolve and type-check `source`.
///
/// # Errors
///
/// Returns the first error of any stage.
pub fn compile(source: &str) -> Result<Arc<hir::Program>> {
    Ok(Arc::new(resolve(&parse(source)?)?))
}
