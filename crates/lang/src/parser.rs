//! Recursive-descent parser for Alphonse-L.

use crate::ast::*;
use crate::error::{LangError, Result};
use crate::lexer::lex;
use crate::token::{Pragma, Span, Spanned, Token};

/// Parses an Alphonse-L source text into a [`Module`].
///
/// # Errors
///
/// Returns [`LangError::Lex`] or [`LangError::Parse`] on malformed input.
///
/// # Example
///
/// ```
/// let module = alphonse_lang::parse("VAR x : INTEGER := 1;").unwrap();
/// assert_eq!(module.decls.len(), 1);
/// ```
pub fn parse(source: &str) -> Result<Module> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.module()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(Span::NONE, |s| s.span)
    }

    fn line(&self) -> u32 {
        self.span().line
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos)?.token.clone();
        self.pos += 1;
        Some(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found {}", self.describe_current())))
        }
    }

    fn describe_current(&self) -> String {
        match self.peek() {
            Some(t) => format!("`{t}`"),
            None => "end of input".to_string(),
        }
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError::parse(self.line(), message)
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.bump() {
                Some(Token::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.err(format!(
                "expected {what} identifier, found {}",
                self.describe_current()
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    fn module(&mut self) -> Result<Module> {
        let mut decls = Vec::new();
        loop {
            // A pragma may precede PROCEDURE (CACHED) declarations.
            match self.peek() {
                None => break,
                Some(Token::Type) => decls.push(Decl::Type(self.type_decl()?)),
                Some(Token::Var) => decls.push(Decl::Global(self.global_decl()?)),
                Some(Token::Procedure) => decls.push(Decl::Proc(self.proc_decl(None)?)),
                Some(Token::Pragma(_)) => {
                    let pragma = match self.bump() {
                        Some(Token::Pragma(p)) => p,
                        _ => unreachable!(),
                    };
                    if !matches!(pragma, Pragma::Cached(..)) {
                        return Err(self
                            .err("only a (*CACHED*) pragma may precede a top-level declaration"));
                    }
                    if self.peek() != Some(&Token::Procedure) {
                        return Err(self.err("expected PROCEDURE after (*CACHED*) pragma"));
                    }
                    decls.push(Decl::Proc(self.proc_decl(Some(pragma))?));
                }
                Some(_) => {
                    return Err(self.err(format!(
                        "expected a declaration, found {}",
                        self.describe_current()
                    )))
                }
            }
        }
        Ok(Module { decls })
    }

    fn type_expr(&mut self) -> Result<TypeExpr> {
        if self.eat(&Token::Array) {
            self.expect(&Token::Of)?;
            let elem = self.type_expr()?;
            return Ok(TypeExpr::Array(Box::new(elem)));
        }
        match self.peek() {
            Some(Token::Ident(s)) => {
                let t = match s.as_str() {
                    "INTEGER" => TypeExpr::Integer,
                    "BOOLEAN" => TypeExpr::Boolean,
                    "TEXT" => TypeExpr::Text,
                    other => TypeExpr::Named(other.to_string()),
                };
                self.bump();
                Ok(t)
            }
            _ => Err(self.err(format!(
                "expected a type, found {}",
                self.describe_current()
            ))),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        let mut names = vec![self.ident("variable")?];
        while self.eat(&Token::Comma) {
            names.push(self.ident("variable")?);
        }
        Ok(names)
    }

    fn global_decl(&mut self) -> Result<GlobalDecl> {
        let span = self.span();
        self.expect(&Token::Var)?;
        let names = self.ident_list()?;
        self.expect(&Token::Colon)?;
        let ty = self.type_expr()?;
        let init = if self.eat(&Token::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&Token::Semi)?;
        Ok(GlobalDecl {
            names,
            ty,
            init,
            span,
        })
    }

    fn type_decl(&mut self) -> Result<TypeDecl> {
        let span = self.span();
        self.expect(&Token::Type)?;
        let name = self.ident("type")?;
        self.expect(&Token::Eq)?;
        let parent = match self.peek() {
            Some(Token::Ident(_)) => Some(self.ident("supertype")?),
            _ => None,
        };
        self.expect(&Token::Object)?;
        let mut fields = Vec::new();
        // Field groups until METHODS / OVERRIDES / END.
        while matches!(self.peek(), Some(Token::Ident(_))) {
            let names = self.ident_list()?;
            self.expect(&Token::Colon)?;
            let ty = self.type_expr()?;
            self.expect(&Token::Semi)?;
            fields.push(FieldDecl { names, ty });
        }
        let mut methods = Vec::new();
        if self.eat(&Token::Methods) {
            while !matches!(self.peek(), Some(Token::Overrides | Token::End)) {
                methods.push(self.method_decl()?);
            }
        }
        let mut overrides = Vec::new();
        if self.eat(&Token::Overrides) {
            while self.peek() != Some(&Token::End) {
                overrides.push(self.override_decl()?);
            }
        }
        self.expect(&Token::End)?;
        self.expect(&Token::Semi)?;
        Ok(TypeDecl {
            name,
            parent,
            fields,
            methods,
            overrides,
            span,
        })
    }

    fn method_pragma(&mut self) -> Result<Option<Pragma>> {
        if let Some(Token::Pragma(p)) = self.peek() {
            let p = *p;
            if !matches!(p, Pragma::Maintained(_)) {
                return Err(self.err("only (*MAINTAINED*) applies to methods"));
            }
            self.bump();
            Ok(Some(p))
        } else {
            Ok(None)
        }
    }

    fn method_decl(&mut self) -> Result<MethodDecl> {
        let span = self.span();
        let pragma = self.method_pragma()?;
        let name = self.ident("method")?;
        let params = if self.peek() == Some(&Token::LParen) {
            self.params()?
        } else {
            Vec::new()
        };
        let ret = if self.eat(&Token::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        self.expect(&Token::Assign)?;
        let impl_proc = self.ident("implementation procedure")?;
        self.expect(&Token::Semi)?;
        Ok(MethodDecl {
            pragma,
            name,
            params,
            ret,
            impl_proc,
            span,
        })
    }

    fn override_decl(&mut self) -> Result<OverrideDecl> {
        let span = self.span();
        let pragma = self.method_pragma()?;
        let name = self.ident("method")?;
        self.expect(&Token::Assign)?;
        let impl_proc = self.ident("implementation procedure")?;
        self.expect(&Token::Semi)?;
        Ok(OverrideDecl {
            pragma,
            name,
            impl_proc,
            span,
        })
    }

    fn params(&mut self) -> Result<Vec<Param>> {
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let names = self.ident_list()?;
                self.expect(&Token::Colon)?;
                let ty = self.type_expr()?;
                for name in names {
                    params.push(Param {
                        name,
                        ty: ty.clone(),
                    });
                }
                if !self.eat(&Token::Semi) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(params)
    }

    fn proc_decl(&mut self, pragma: Option<Pragma>) -> Result<ProcDecl> {
        let span = self.span();
        self.expect(&Token::Procedure)?;
        let name = self.ident("procedure")?;
        let params = self.params()?;
        let ret = if self.eat(&Token::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        self.expect(&Token::Eq)?;
        let mut locals = Vec::new();
        while self.eat(&Token::Var) {
            loop {
                let names = self.ident_list()?;
                self.expect(&Token::Colon)?;
                let ty = self.type_expr()?;
                let init = if self.eat(&Token::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Token::Semi)?;
                locals.push(LocalDecl { names, ty, init });
                if !matches!(self.peek(), Some(Token::Ident(_))) {
                    break;
                }
            }
        }
        self.expect(&Token::Begin)?;
        let body = self.stmt_list(&[Token::End])?;
        self.expect(&Token::End)?;
        // Optional trailing procedure name (Modula-3 style).
        if let Some(Token::Ident(s)) = self.peek() {
            if *s == name {
                self.bump();
            } else {
                let s = s.clone();
                return Err(self.err(format!(
                    "END trailer {s} does not match procedure name {name}"
                )));
            }
        }
        self.expect(&Token::Semi)?;
        Ok(ProcDecl {
            pragma,
            name,
            params,
            ret,
            locals,
            body,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt_list(&mut self, terminators: &[Token]) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input in statement list")),
                Some(t) if terminators.contains(t) => break,
                _ => stmts.push(self.stmt()?),
            }
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        match self.peek() {
            Some(Token::If) => self.if_stmt(),
            Some(Token::While) => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&Token::Do)?;
                let body = self.stmt_list(&[Token::End])?;
                self.expect(&Token::End)?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::While { cond, body, span })
            }
            Some(Token::For) => {
                self.bump();
                let var = self.ident("loop variable")?;
                self.expect(&Token::Assign)?;
                let from = self.expr()?;
                self.expect(&Token::To)?;
                let to = self.expr()?;
                let by = if self.eat(&Token::By) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Token::Do)?;
                let body = self.stmt_list(&[Token::End])?;
                self.expect(&Token::End)?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::For {
                    var,
                    from,
                    to,
                    by,
                    body,
                    span,
                })
            }
            Some(Token::Return) => {
                self.bump();
                let value = if self.peek() == Some(&Token::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Token::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            _ => {
                // Assignment or call statement: parse a postfix expression.
                let e = self.expr()?;
                if self.eat(&Token::Assign) {
                    if !matches!(
                        e,
                        Expr::Var { .. } | Expr::Field { .. } | Expr::Index { .. }
                    ) {
                        return Err(self
                            .err("assignment target must be a variable, field or array element"));
                    }
                    let value = self.expr()?;
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::Assign {
                        target: e,
                        value,
                        span,
                    })
                } else {
                    if !matches!(e, Expr::Call { .. }) {
                        return Err(self.err("expression statement must be a call"));
                    }
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::Expr { expr: e, span })
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect(&Token::If)?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect(&Token::Then)?;
        let body = self.stmt_list(&[Token::Elsif, Token::Else, Token::End])?;
        arms.push((cond, body));
        let mut else_body = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Elsif) => {
                    self.bump();
                    let c = self.expr()?;
                    self.expect(&Token::Then)?;
                    let b = self.stmt_list(&[Token::Elsif, Token::Else, Token::End])?;
                    arms.push((c, b));
                }
                Some(Token::Else) => {
                    self.bump();
                    else_body = self.stmt_list(&[Token::End])?;
                    self.expect(&Token::End)?;
                    self.expect(&Token::Semi)?;
                    break;
                }
                Some(Token::End) => {
                    self.bump();
                    self.expect(&Token::Semi)?;
                    break;
                }
                _ => return Err(self.err("expected ELSIF, ELSE or END in IF statement")),
            }
        }
        Ok(Stmt::If {
            arms,
            else_body,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Token::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(&Token::Not) {
            let e = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            })
        } else {
            self.rel_expr()
        }
    }

    fn rel_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                Some(Token::Amp) => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Div) => BinOp::Div,
                Some(Token::Mod) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let e = self.unary_expr()?;
            Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            })
        } else {
            self.postfix_expr()
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.bump();
                    let span = self.span();
                    let name = self.ident("field or method")?;
                    if self.peek() == Some(&Token::LParen) {
                        let args = self.args()?;
                        e = Expr::Call {
                            callee: Callee::Method {
                                obj: Box::new(e),
                                name,
                            },
                            args,
                            span,
                        };
                    } else {
                        e = Expr::Field {
                            obj: Box::new(e),
                            name,
                            span,
                        };
                    }
                }
                Some(Token::LBracket) => {
                    self.bump();
                    let span = self.span();
                    let index = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    e = Expr::Index {
                        arr: Box::new(e),
                        index: Box::new(index),
                        span,
                    };
                }
                Some(Token::LParen) => {
                    // Only a bare variable can become a procedure call.
                    if let Expr::Var { name, span } = e {
                        let args = self.args()?;
                        e = Expr::Call {
                            callee: Callee::Proc(name),
                            args,
                            span,
                        };
                    } else {
                        return Err(self.err("only procedures and methods can be called"));
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>> {
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek() {
            Some(Token::Int(_)) => match self.bump() {
                Some(Token::Int(v)) => Ok(Expr::Int(v)),
                _ => unreachable!(),
            },
            Some(Token::Text(_)) => match self.bump() {
                Some(Token::Text(s)) => Ok(Expr::Text(s)),
                _ => unreachable!(),
            },
            Some(Token::True) => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Some(Token::False) => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Some(Token::Nil) => {
                self.bump();
                Ok(Expr::Nil)
            }
            Some(Token::New) => {
                self.bump();
                self.expect(&Token::LParen)?;
                if self.peek() == Some(&Token::Array) {
                    let elem = self.type_expr()?;
                    let TypeExpr::Array(elem) = elem else {
                        unreachable!("type_expr on ARRAY returns Array");
                    };
                    self.expect(&Token::Comma)?;
                    let size = self.expr()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::NewArray {
                        elem: *elem,
                        size: Box::new(size),
                        span,
                    });
                }
                let type_name = self.ident("type")?;
                self.expect(&Token::RParen)?;
                Ok(Expr::New { type_name, span })
            }
            Some(Token::Pragma(Pragma::Unchecked)) => {
                self.bump();
                let e = self.postfix_expr()?;
                Ok(Expr::Unchecked {
                    expr: Box::new(e),
                    span,
                })
            }
            Some(Token::Pragma(_)) => Err(self.err("unexpected pragma in expression")),
            Some(Token::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(_)) => {
                let name = self.ident("variable")?;
                Ok(Expr::Var { name, span })
            }
            _ => Err(self.err(format!(
                "expected an expression, found {}",
                self.describe_current()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals() {
        let m = parse("VAR a, b : INTEGER := 3; VAR t : TEXT;").unwrap();
        assert_eq!(m.decls.len(), 2);
        match &m.decls[0] {
            Decl::Global(g) => {
                assert_eq!(g.names, vec!["a", "b"]);
                assert_eq!(g.ty, TypeExpr::Integer);
                assert_eq!(g.init, Some(Expr::Int(3)));
            }
            other => panic!("expected global, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_papers_tree_type() {
        // Algorithm 1 of the paper, modulo OCR noise.
        let src = r#"
            TYPE Tree = OBJECT
                left, right : Tree;
            METHODS
                (*MAINTAINED*) height() : INTEGER := Height;
            END;
            TYPE TreeNil = Tree OBJECT
            OVERRIDES
                (*MAINTAINED*) height := HeightNil;
            END;
            PROCEDURE Height(t : Tree) : INTEGER =
            BEGIN
                RETURN MAX(t.left.height(), t.right.height()) + 1
            END Height;
            PROCEDURE HeightNil(t : Tree) : INTEGER =
            BEGIN RETURN 0 END HeightNil;
        "#;
        // Statement lists require semicolons after RETURN; add them.
        let src = src.replace(
            "+ 1\n            END Height",
            "+ 1;\n            END Height",
        );
        let src = src.replace("RETURN 0 END", "RETURN 0; END");
        let m = parse(&src).unwrap();
        assert_eq!(m.decls.len(), 4);
        match &m.decls[0] {
            Decl::Type(t) => {
                assert_eq!(t.name, "Tree");
                assert_eq!(t.fields[0].names, vec!["left", "right"]);
                assert_eq!(t.methods[0].name, "height");
                assert!(t.methods[0].pragma.is_some());
            }
            other => panic!("expected type, got {other:?}"),
        }
        match &m.decls[1] {
            Decl::Type(t) => {
                assert_eq!(t.parent.as_deref(), Some("Tree"));
                assert_eq!(t.overrides[0].impl_proc, "HeightNil");
            }
            other => panic!("expected type, got {other:?}"),
        }
    }

    #[test]
    fn parses_chained_calls() {
        let src = r#"
            PROCEDURE F(t : Tree) : Tree =
            BEGIN
                RETURN RotateRight(t).balance();
            END F;
        "#;
        let m = parse(src).unwrap();
        match &m.decls[0] {
            Decl::Proc(p) => match &p.body[0] {
                Stmt::Return {
                    value: Some(Expr::Call { callee, .. }),
                    ..
                } => match callee {
                    Callee::Method { name, obj } => {
                        assert_eq!(name, "balance");
                        assert!(matches!(**obj, Expr::Call { .. }));
                    }
                    other => panic!("expected method call, got {other:?}"),
                },
                other => panic!("expected return of call, got {other:?}"),
            },
            other => panic!("expected proc, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            PROCEDURE P(n : INTEGER) : INTEGER =
            VAR s : INTEGER := 0;
            BEGIN
                FOR i := 1 TO n DO s := s + i; END;
                WHILE s > 100 DO s := s - 100; END;
                IF s = 0 THEN RETURN 0;
                ELSIF s < 10 THEN RETURN 1;
                ELSE RETURN 2;
                END;
            END P;
        "#;
        let m = parse(src).unwrap();
        match &m.decls[0] {
            Decl::Proc(p) => {
                assert_eq!(p.body.len(), 3);
                assert!(matches!(p.body[0], Stmt::For { .. }));
                assert!(matches!(p.body[1], Stmt::While { .. }));
                match &p.body[2] {
                    Stmt::If {
                        arms, else_body, ..
                    } => {
                        assert_eq!(arms.len(), 2);
                        assert_eq!(else_body.len(), 1);
                    }
                    other => panic!("expected if, got {other:?}"),
                }
            }
            other => panic!("expected proc, got {other:?}"),
        }
    }

    #[test]
    fn parses_cached_pragma_on_procedure() {
        let src = r#"
            (*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
            BEGIN
                IF n < 2 THEN RETURN n; END;
                RETURN Fib(n - 1) + Fib(n - 2);
            END Fib;
        "#;
        let m = parse(src).unwrap();
        match &m.decls[0] {
            Decl::Proc(p) => assert!(p.pragma.is_some()),
            other => panic!("expected proc, got {other:?}"),
        }
    }

    #[test]
    fn parses_unchecked_expression() {
        let src = r#"
            PROCEDURE F(t : Tree) : INTEGER =
            BEGIN
                RETURN (*UNCHECKED*) t.left.height() + t.right.height();
            END F;
        "#;
        let m = parse(src).unwrap();
        match &m.decls[0] {
            Decl::Proc(p) => match &p.body[0] {
                Stmt::Return {
                    value: Some(Expr::Binary { lhs, .. }),
                    ..
                } => assert!(matches!(**lhs, Expr::Unchecked { .. })),
                other => panic!("unexpected {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn rejects_assignment_to_call() {
        let src = "PROCEDURE F() = BEGIN G() := 1; END F;";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_non_call_statement() {
        let src = "PROCEDURE F() = BEGIN 1 + 2; END F;";
        assert!(parse(src).is_err());
    }

    #[test]
    fn operator_precedence_is_standard() {
        let src = "VAR x : INTEGER := 1 + 2 * 3;";
        let m = parse(src).unwrap();
        match &m.decls[0] {
            Decl::Global(g) => match g.init.as_ref().unwrap() {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_arrays() {
        let src = r#"
            VAR xs : ARRAY OF INTEGER;
            VAR grid : ARRAY OF ARRAY OF Tree;
            PROCEDURE F(n : INTEGER) : INTEGER =
            BEGIN
                xs := NEW(ARRAY OF INTEGER, n * 2);
                xs[0] := 1;
                xs[n - 1] := xs[0] + 1;
                RETURN xs[n DIV 2];
            END F;
        "#;
        let m = parse(src).unwrap();
        match &m.decls[0] {
            Decl::Global(g) => {
                assert_eq!(g.ty, TypeExpr::Array(Box::new(TypeExpr::Integer)));
            }
            other => panic!("expected global, got {other:?}"),
        }
        match &m.decls[2] {
            Decl::Proc(p) => {
                assert!(matches!(
                    p.body[0],
                    Stmt::Assign {
                        value: Expr::NewArray { .. },
                        ..
                    }
                ));
                assert!(matches!(
                    p.body[1],
                    Stmt::Assign {
                        target: Expr::Index { .. },
                        ..
                    }
                ));
            }
            other => panic!("expected proc, got {other:?}"),
        }
    }

    #[test]
    fn indexed_call_results_parse() {
        // Indexing binds as a postfix like field selection.
        let src = "PROCEDURE F() : INTEGER = BEGIN RETURN G()[1].x; END F;";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "VAR x : INTEGER := 1;\nVAR y INTEGER;";
        match parse(src) {
            Err(LangError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
