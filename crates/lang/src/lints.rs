//! Lint pass over the effect-inference results (`alphonse-check`).
//!
//! Five lints, each grounded in a hazard the paper discusses:
//!
//! * **W01** (error) — a `(*CACHED*)` computation transitively performs a
//!   write to non-local storage. A cache hit skips the body, and with it
//!   the write, so incremental and conventional execution observably
//!   diverge (the combinator restriction of Section 4 / Theorem 5.1).
//!   `(*MAINTAINED*)` methods are exempt: the paper's Algorithm 11
//!   deliberately rebalances an AVL tree from inside maintained methods.
//! * **W02** (warning) — an `(*UNCHECKED*)` expression reads state that
//!   some procedure of the program mutates. The suppressed dependence is
//!   exactly the one that would have kept the cached value fresh
//!   (Section 6.4's stale-value hazard).
//! * **W03** (warning) — a `(*CACHED*)` procedure reaches global reads
//!   only through dynamic method dispatch. The static `R(p)` enumeration
//!   of Section 6 cannot name those globals without resolving dispatch, so
//!   its encoding degrades to the conservative union over all overrides.
//! * **W04** (warning) — a pragma with no effect: an `(*UNCHECKED*)`
//!   region that suppresses nothing, a `(*MAINTAINED*)` method no
//!   procedure dispatches, or a `(*CACHED*)` procedure no procedure calls.
//! * **W05** (error) — an incremental procedure re-requests its own
//!   instance: a call cycle in which every call passes the caller's
//!   formals through unchanged. If such a call executes, the runtime's
//!   cycle detection (Algorithm 5) aborts the program.
//!
//! Three more lints read the whole-program static dependency graph
//! ([`crate::depgraph`]):
//!
//! * **W06** (warning) — a statically possible dependency cycle *through
//!   the store*: a `(*CACHED*)` closure writes a location its own read
//!   closure depends on. The runtime never sees this as a graph cycle
//!   (locations have no in-edges online, and the `F_ON_STACK` check only
//!   catches instance-level call cycles); it shows up as endless
//!   re-dirtying instead, so the static graph is the only early warning.
//!   `(*MAINTAINED*)` writers are exempt — Algorithm 11's AVL rebalancing
//!   is exactly such a self-stabilizing loop, by design.
//! * **W07** (warning) — dead incrementality: a tracked write whose
//!   location reaches no recording reader. Every incremental consumer
//!   reads the location suppressed (under `(*UNCHECKED*)`, or from a
//!   procedure only ever called inside a region), so the write re-dirties
//!   nothing and the consumers' cached values silently go stale. The
//!   write-site dual of W02.
//! * **W08** (warning) — granularity hazard: an incremental procedure
//!   whose static in-degree spans essentially the whole mutable store
//!   (≥ 4 written globals and ≥ 80% of them). Nearly every change
//!   invalidates it, so maintaining it incrementally buys little over
//!   recomputation.

use crate::depgraph::{self, StaticGraph};
use crate::diag::{self, Diagnostic};
use crate::effects::{describe_loc, infer, EffectSet, EffectTable, Loc};
use crate::hir::{IncrKind, ProcId, Program};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Runs every lint over a resolved program.
pub fn lint(program: &Program) -> Vec<Diagnostic> {
    lint_with(program, &infer(program))
}

/// Runs every lint, reusing an already-computed effect table.
pub fn lint_with(program: &Program, effects: &EffectTable) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    w01_cached_writes(program, effects, &mut out);
    w02_stale_unchecked(program, effects, &mut out);
    w03_dispatch_escapes_rp(program, effects, &mut out);
    w04_dead_pragmas(program, effects, &mut out);
    w05_identity_cycles(program, effects, &mut out);
    let graph = depgraph::build(program, effects);
    w06_store_cycles(program, &graph, &mut out);
    w07_dead_writes(program, effects, &graph, &mut out);
    w08_whole_store_dependence(program, effects, &graph, &mut out);
    diag::sort(&mut out);
    out.dedup();
    out
}

fn is_cached(program: &Program, p: ProcId) -> bool {
    matches!(program.procs[p].incremental, Some((IncrKind::Cached, _)))
}

/// Procedures reachable from `root` through *non-incremental* callees
/// (`root` itself included). Incremental callees open their own instances
/// and are vetted on their own.
fn plain_reach(program: &Program, effects: &EffectTable, root: ProcId) -> Vec<ProcId> {
    let mut seen = BTreeSet::from([root]);
    let mut queue = VecDeque::from([root]);
    let mut out = vec![root];
    while let Some(p) = queue.pop_front() {
        let f = &effects.facts[p];
        let mut next: BTreeSet<ProcId> = f.calls.clone();
        next.extend(effects.dispatch_targets(f.dispatches.iter()));
        for q in next {
            if program.procs[q].incremental.is_some() || !seen.insert(q) {
                continue;
            }
            out.push(q);
            queue.push_back(q);
        }
    }
    out
}

fn w01_cached_writes(program: &Program, effects: &EffectTable, out: &mut Vec<Diagnostic>) {
    // site (owner proc, site index) -> cached roots that reach it.
    let mut hits: BTreeMap<(ProcId, usize), BTreeSet<ProcId>> = BTreeMap::new();
    for root in 0..program.procs.len() {
        if !is_cached(program, root) {
            continue;
        }
        for q in plain_reach(program, effects, root) {
            for (i, _) in effects.facts[q].write_sites.iter().enumerate() {
                hits.entry((q, i)).or_default().insert(root);
            }
        }
    }
    for ((owner, i), roots) in hits {
        let site = &effects.facts[owner].write_sites[i];
        let mut d = Diagnostic::error(
            "W01",
            site.span,
            format!(
                "assignment to {} inside a (*CACHED*) computation — a cache \
                 hit replays the result but skips this effect, diverging from \
                 conventional execution",
                describe_loc(program, site.target)
            ),
        );
        for root in roots {
            let rname = &program.procs[root].name;
            d = d.with_note(if root == owner {
                format!("`{rname}` is marked (*CACHED*)")
            } else {
                format!(
                    "reached from (*CACHED*) procedure `{rname}` via `{}`",
                    program.procs[owner].name
                )
            });
        }
        out.push(d);
    }
}

/// Union of everything any procedure of the program writes (writes are
/// never suppressed, so every writer is a potential staleness source).
fn all_writes(effects: &EffectTable) -> EffectSet {
    let mut w = EffectSet::default();
    for f in &effects.facts {
        w.writes_globals.extend(f.direct.writes_globals.iter());
        w.writes_fields.extend(f.direct.writes_fields.iter());
        w.writes_arrays |= f.direct.writes_arrays;
    }
    w
}

/// Writers of `loc`, by name, for diagnostics.
fn writers_of(program: &Program, effects: &EffectTable, loc: Loc) -> Vec<String> {
    let mut names = Vec::new();
    for (p, f) in effects.facts.iter().enumerate() {
        let writes = match loc {
            Loc::Global(g) => f.direct.writes_globals.contains(&g),
            Loc::Field(o) => f.direct.writes_fields.contains(&o),
            Loc::Arrays => f.direct.writes_arrays,
        };
        if writes {
            names.push(program.procs[p].name.clone());
        }
    }
    names
}

fn w02_stale_unchecked(program: &Program, effects: &EffectTable, out: &mut Vec<Diagnostic>) {
    let writes = all_writes(effects);
    for (p, f) in effects.facts.iter().enumerate() {
        if !effects.reachable[p] {
            continue; // the pragma is dead there — W04's business
        }
        for site in &f.unchecked_sites {
            let (reads, _) = effects.suppressed_by(program, site);
            if !reads.reads_overlap_writes(&writes) {
                continue;
            }
            let mut d = Diagnostic::warning(
                "W02",
                site.span,
                "(*UNCHECKED*) suppresses dependence on state this program \
                 mutates — the enclosing cached value can go stale",
            );
            for loc in reads.reads() {
                let written = match loc {
                    Loc::Global(g) => writes.writes_globals.contains(&g),
                    Loc::Field(o) => writes.writes_fields.contains(&o),
                    Loc::Arrays => writes.writes_arrays,
                };
                if written {
                    d = d.with_note(format!(
                        "{} is written by `{}`",
                        describe_loc(program, loc),
                        writers_of(program, effects, loc).join("`, `")
                    ));
                }
            }
            out.push(d);
        }
    }
}

fn w03_dispatch_escapes_rp(program: &Program, effects: &EffectTable, out: &mut Vec<Diagnostic>) {
    for p in 0..program.procs.len() {
        if !is_cached(program, p) {
            continue;
        }
        let full = &effects.transitive[p].reads_globals;
        let stat = &effects.transitive_static[p].reads_globals;
        let escaped: Vec<usize> = full.difference(stat).copied().collect();
        if escaped.is_empty() {
            continue;
        }
        let mut d = Diagnostic::warning(
            "W03",
            program.procs[p].span,
            format!(
                "(*CACHED*) procedure `{}` reaches global reads only through \
                 dynamic method dispatch; the static R(p) encoding cannot \
                 name them and falls back to the union over all overrides",
                program.procs[p].name
            ),
        );
        for g in escaped {
            d = d.with_note(format!(
                "{} is only read behind a dispatch",
                describe_loc(program, Loc::Global(g))
            ));
        }
        out.push(d);
    }
}

fn w04_dead_pragmas(program: &Program, effects: &EffectTable, out: &mut Vec<Diagnostic>) {
    // (a) UNCHECKED regions that suppress nothing.
    for (p, f) in effects.facts.iter().enumerate() {
        for site in &f.unchecked_sites {
            if !effects.reachable[p] {
                out.push(Diagnostic::warning(
                    "W04",
                    site.span,
                    format!(
                        "(*UNCHECKED*) has no effect: `{}` never executes \
                         inside an incremental computation",
                        program.procs[p].name
                    ),
                ));
                continue;
            }
            let (reads, hits_incremental) = effects.suppressed_by(program, site);
            if reads.reads().is_empty() && !hits_incremental {
                out.push(Diagnostic::warning(
                    "W04",
                    site.span,
                    "(*UNCHECKED*) has no effect: the expression performs no \
                     tracked reads and calls no incremental procedure",
                ));
            }
        }
    }

    // (b) MAINTAINED methods no procedure dispatches.
    let dispatched: BTreeSet<&str> = effects
        .facts
        .iter()
        .flat_map(|f| f.dispatches.iter().map(String::as_str))
        .collect();
    let mut seen_methods: BTreeSet<&str> = BTreeSet::new();
    for t in &program.types {
        for m in &t.methods {
            if m.maintained && seen_methods.insert(&m.name) && !dispatched.contains(m.name.as_str())
            {
                out.push(Diagnostic::warning(
                    "W04",
                    m.span,
                    format!(
                        "(*MAINTAINED*) method `{}` is never dispatched by \
                         program code; host calls still update incrementally, \
                         but no procedure depends on it",
                        m.name
                    ),
                ));
            }
        }
    }

    // (c) CACHED procedures no procedure calls (self-recursion counts as a
    // use: the memo is what makes such a procedure efficient).
    let mut called: BTreeSet<ProcId> = BTreeSet::new();
    for f in &effects.facts {
        called.extend(f.calls.iter().copied());
        called.extend(effects.dispatch_targets(f.dispatches.iter()));
    }
    for p in 0..program.procs.len() {
        if is_cached(program, p) && !called.contains(&p) {
            out.push(Diagnostic::warning(
                "W04",
                program.procs[p].span,
                format!(
                    "(*CACHED*) procedure `{}` is never called by program \
                     code; host calls are still cached, but nothing is \
                     memoized across procedures",
                    program.procs[p].name
                ),
            ));
        }
    }
}

fn w05_identity_cycles(program: &Program, effects: &EffectTable, out: &mut Vec<Diagnostic>) {
    let n = program.procs.len();
    // Identity-argument call graph: an edge means the callee's instance has
    // exactly the caller's arguments.
    let succs: Vec<BTreeSet<ProcId>> = (0..n)
        .map(|p| {
            let f = &effects.facts[p];
            let mut s = f.identity_calls.clone();
            s.extend(effects.dispatch_targets(f.identity_dispatches.iter()));
            s
        })
        .collect();
    for p in 0..n {
        if program.procs[p].incremental.is_none() {
            continue;
        }
        // BFS back to p, remembering parents to reconstruct the cycle.
        let mut parent: Vec<Option<ProcId>> = vec![None; n];
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([p]);
        let mut closes = None;
        'bfs: while let Some(q) = queue.pop_front() {
            for &r in &succs[q] {
                if r == p {
                    closes = Some(q);
                    break 'bfs;
                }
                if seen.insert(r) {
                    parent[r] = Some(q);
                    queue.push_back(r);
                }
            }
        }
        let Some(mut q) = closes else { continue };
        let mut cycle = vec![p];
        let mut tail = Vec::new();
        while q != p {
            tail.push(q);
            q = parent[q].expect("reached via BFS");
        }
        tail.reverse();
        cycle.extend(tail);
        let path: Vec<&str> = cycle
            .iter()
            .chain([&p])
            .map(|&i| program.procs[i].name.as_str())
            .collect();
        out.push(
            Diagnostic::error(
                "W05",
                program.procs[p].span,
                format!(
                    "incremental procedure `{}` re-requests its own instance: \
                     every call in the cycle {} passes the caller's arguments \
                     through unchanged",
                    program.procs[p].name,
                    path.join(" -> ")
                ),
            )
            .with_note(
                "if this call executes, the runtime's cycle detection \
                 (Algorithm 5) aborts the program",
            ),
        );
    }
}

fn w06_store_cycles(program: &Program, graph: &StaticGraph, out: &mut Vec<Diagnostic>) {
    for cycle in &graph.cycles {
        if !cycle.through_store || cycle.cached_writers.is_empty() {
            continue;
        }
        let members: Vec<&str> = cycle
            .nodes
            .iter()
            .map(|&v| graph.nodes[v].label.as_str())
            .collect();
        for &w in &cycle.cached_writers {
            out.push(
                Diagnostic::warning(
                    "W06",
                    program.procs[w].span,
                    format!(
                        "(*CACHED*) procedure `{}` writes storage its own \
                         dependency closure reads — a statically possible \
                         dependency cycle through the store",
                        program.procs[w].name
                    ),
                )
                .with_note(format!("cycle members: {}", members.join(", ")))
                .with_note(
                    "the runtime cannot detect this as a graph cycle (locations \
                     have no in-edges online): it shows up as endless \
                     re-dirtying; (*MAINTAINED*) methods are the sanctioned \
                     self-stabilizing idiom (Algorithm 11)",
                ),
            );
        }
    }
}

fn w07_dead_writes(
    program: &Program,
    effects: &EffectTable,
    graph: &StaticGraph,
    out: &mut Vec<Diagnostic>,
) {
    if program.incremental_proc_count() == 0 {
        return;
    }
    // Locations some incremental computation consumes *suppressed*: read
    // under `(*UNCHECKED*)` in a recording-reachable procedure, or read
    // normally by a procedure that only ever runs in suppressed frames.
    let mut suppressed: BTreeMap<Loc, BTreeSet<ProcId>> = BTreeMap::new();
    for (p, f) in effects.facts.iter().enumerate() {
        let reads = if effects.recording_reachable[p] {
            f.unchecked_reads.reads()
        } else if effects.reachable[p] {
            f.direct.reads()
        } else {
            continue;
        };
        for loc in reads {
            suppressed.entry(loc).or_default().insert(p);
        }
    }
    for f in &effects.facts {
        for site in &f.write_sites {
            if graph.has_read_edge(site.target) {
                continue; // somebody records a dependence; the write matters
            }
            let Some(consumers) = suppressed.get(&site.target) else {
                continue; // nobody incremental consumes it at all
            };
            let names: Vec<&str> = consumers
                .iter()
                .map(|&p| program.procs[p].name.as_str())
                .collect();
            out.push(
                Diagnostic::warning(
                    "W07",
                    site.span,
                    format!(
                        "assignment to {} re-dirties no incremental \
                         computation: every incremental consumer reads it \
                         suppressed",
                        describe_loc(program, site.target)
                    ),
                )
                .with_note(format!(
                    "read without recording a dependence in `{}`",
                    names.join("`, `")
                ))
                .with_note(
                    "the consumers' cached values silently go stale — this \
                     write maintains nothing",
                ),
            );
        }
    }
}

fn w08_whole_store_dependence(
    program: &Program,
    effects: &EffectTable,
    graph: &StaticGraph,
    out: &mut Vec<Diagnostic>,
) {
    let written = all_writes(effects).writes_globals;
    for p in 0..program.procs.len() {
        if program.procs[p].incremental.is_none() {
            continue;
        }
        let covered: BTreeSet<usize> = graph
            .checked_read_globals(p)
            .intersection(&written)
            .copied()
            .collect();
        // "Essentially the whole store": at least 4 mutable globals and at
        // least 80% of them. Small stores stay exempt — depending on 2 of
        // 2 globals is normal, depending on 8 of 9 is a granularity smell.
        if covered.len() < 4 || covered.len() * 5 < written.len() * 4 {
            continue;
        }
        let names: Vec<&str> = covered
            .iter()
            .map(|&g| program.globals[g].name.as_str())
            .collect();
        out.push(
            Diagnostic::warning(
                "W08",
                program.procs[p].span,
                format!(
                    "incremental procedure `{}` statically depends on {} of \
                     the {} globals this program mutates — nearly every \
                     change invalidates it, so incremental maintenance buys \
                     little over recomputation",
                    program.procs[p].name,
                    covered.len(),
                    written.len()
                ),
            )
            .with_note(format!(
                "depends on mutable globals `{}`",
                names.join("`, `")
            ))
            .with_note(
                "consider splitting the computation so each piece depends \
                 on a narrower slice of the store",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;

    fn lints(src: &str) -> Vec<Diagnostic> {
        lint(&resolve(&parse(src).unwrap()).unwrap())
    }

    fn codes(ds: &[Diagnostic]) -> Vec<&'static str> {
        ds.iter().map(|d| d.code).collect()
    }

    #[test]
    fn w01_fires_on_cached_writes_and_spares_maintained() {
        let ds = lints(
            "VAR count : INTEGER;
             (*CACHED*) PROCEDURE Tally(n : INTEGER) : INTEGER =
             BEGIN count := count + 1; RETURN n; END Tally;
             PROCEDURE Use(n : INTEGER) : INTEGER = BEGIN RETURN Tally(n + 1); END Use;",
        );
        // The cached write is both a divergence hazard (W01) and, because
        // Tally also reads `count`, a store-cycle candidate (W06).
        assert_eq!(codes(&ds), ["W06", "W01"]);
        let w01 = ds.iter().find(|d| d.code == "W01").unwrap();
        assert_eq!(w01.span.line, 3);

        // The same write inside a MAINTAINED method is the paper's own
        // Algorithm 11 idiom — clean.
        let ds = lints(
            "TYPE T = OBJECT
                v : INTEGER;
             METHODS
                (*MAINTAINED*) bump() : INTEGER := Bump;
             END;
             PROCEDURE Bump(t : T) : INTEGER =
             BEGIN t.v := t.v + 1; RETURN t.v; END Bump;
             PROCEDURE Use(t : T) : INTEGER = BEGIN RETURN t.bump(); END Use;",
        );
        assert!(codes(&ds).is_empty(), "{ds:?}");
    }

    #[test]
    fn w01_traverses_plain_helpers_but_not_incremental_callees() {
        let ds = lints(
            "VAR log : INTEGER;
             PROCEDURE Helper() = BEGIN log := log + 1; END Helper;
             (*CACHED*) PROCEDURE F(n : INTEGER) : INTEGER =
             BEGIN Helper(); RETURN n; END F;
             PROCEDURE Use(n : INTEGER) : INTEGER = BEGIN RETURN F(n + 1); END Use;",
        );
        // `log := log + 1` in Helper reads what it writes, so the cached
        // closure of F both reads and writes `log`: W01 and W06 fire.
        assert_eq!(codes(&ds), ["W01", "W06"]);
        assert!(ds[0].notes.iter().any(|n| n.contains("via `Helper`")));
    }

    #[test]
    fn w02_fires_only_when_suppressed_state_is_mutated() {
        let dirty = lints(
            "VAR rate : INTEGER;
             PROCEDURE SetRate(r : INTEGER) = BEGIN rate := r; END SetRate;
             (*CACHED*) PROCEDURE Q(n : INTEGER) : INTEGER =
             BEGIN RETURN (*UNCHECKED*) rate * n; END Q;
             PROCEDURE Use(n : INTEGER) : INTEGER = BEGIN RETURN Q(n + 1); END Use;",
        );
        // The suppressed read is W02; its write-site dual is W07.
        assert_eq!(codes(&dirty), ["W07", "W02"]);
        let w02 = dirty.iter().find(|d| d.code == "W02").unwrap();
        assert!(w02.notes[0].contains("`SetRate`"), "{dirty:?}");

        let clean = lints(
            "VAR rate : INTEGER;
             (*CACHED*) PROCEDURE Q(n : INTEGER) : INTEGER =
             BEGIN RETURN (*UNCHECKED*) rate * n; END Q;
             PROCEDURE Use(n : INTEGER) : INTEGER = BEGIN RETURN Q(n + 1); END Use;",
        );
        assert!(codes(&clean).is_empty(), "host-only writes: {clean:?}");
    }

    #[test]
    fn w03_fires_when_global_reads_hide_behind_dispatch() {
        let ds = lints(
            "VAR bias : INTEGER;
             TYPE A = OBJECT METHODS cost() : INTEGER := CostA; END;
             PROCEDURE CostA(a : A) : INTEGER = BEGIN RETURN bias; END CostA;
             (*CACHED*) PROCEDURE Total(a : A) : INTEGER =
             BEGIN RETURN a.cost(); END Total;
             PROCEDURE Use(a : A) : INTEGER = BEGIN RETURN Total(a); END Use;",
        );
        assert_eq!(codes(&ds), ["W03"]);
        assert!(ds[0].message.contains("`Total`"));
    }

    #[test]
    fn w04_flags_unchecked_without_tracked_reads() {
        let ds = lints(
            "(*CACHED*) PROCEDURE F(n : INTEGER) : INTEGER =
             BEGIN RETURN (*UNCHECKED*) (n + 1); END F;
             PROCEDURE Use(n : INTEGER) : INTEGER = BEGIN RETURN F(n); END Use;",
        );
        assert_eq!(codes(&ds), ["W04"]);
    }

    #[test]
    fn w04_flags_undispatched_maintained_and_uncalled_cached() {
        let ds = lints(
            "VAR g : INTEGER;
             TYPE T = OBJECT
                v : INTEGER;
             METHODS
                (*MAINTAINED*) m() : INTEGER := M;
             END;
             PROCEDURE M(t : T) : INTEGER = BEGIN RETURN t.v; END M;
             (*CACHED*) PROCEDURE Lonely(n : INTEGER) : INTEGER =
             BEGIN RETURN n + g; END Lonely;",
        );
        assert_eq!(codes(&ds), ["W04", "W04"]);
    }

    #[test]
    fn w04_accepts_self_recursive_cached_procedures() {
        let ds = lints(
            "(*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
             BEGIN
                IF n < 2 THEN RETURN n; END;
                RETURN Fib(n - 1) + Fib(n - 2);
             END Fib;",
        );
        assert!(codes(&ds).is_empty(), "{ds:?}");
    }

    #[test]
    fn w05_fires_on_identity_cycles_through_helpers() {
        let ds = lints(
            "(*CACHED*) PROCEDURE P(x : INTEGER) : INTEGER =
             BEGIN RETURN Q(x); END P;
             PROCEDURE Q(x : INTEGER) : INTEGER =
             BEGIN RETURN P(x); END Q;
             PROCEDURE Use(x : INTEGER) : INTEGER = BEGIN RETURN P(x); END Use;",
        );
        assert_eq!(codes(&ds), ["W05"]);
        assert!(ds[0].message.contains("P -> Q -> P"), "{ds:?}");
    }

    #[test]
    fn w06_fires_on_cached_store_cycle_not_on_maintained() {
        let ds = lints(
            "VAR acc : INTEGER;
             (*CACHED*) PROCEDURE Step() : INTEGER =
             BEGIN acc := acc + 1; RETURN acc; END Step;
             PROCEDURE Use() : INTEGER = BEGIN RETURN Step(); END Use;",
        );
        // W01 fires too (a cached write is always a divergence hazard);
        // W06 adds the cycle-specific one.
        assert!(codes(&ds).contains(&"W06"), "{ds:?}");
        let w06 = ds.iter().find(|d| d.code == "W06").unwrap();
        assert!(w06.notes[0].contains("g:acc"), "{w06:?}");

        let ds = lints(
            "TYPE T = OBJECT
                v : INTEGER;
             METHODS
                (*MAINTAINED*) bump() : INTEGER := Bump;
             END;
             PROCEDURE Bump(t : T) : INTEGER =
             BEGIN t.v := t.v + 1; RETURN t.v; END Bump;
             PROCEDURE Use(t : T) : INTEGER = BEGIN RETURN t.bump(); END Use;",
        );
        assert!(codes(&ds).is_empty(), "Algorithm 11 idiom: {ds:?}");
    }

    #[test]
    fn w07_fires_when_all_consumers_are_suppressed() {
        let ds = lints(
            "VAR rate : INTEGER;
             PROCEDURE SetRate(r : INTEGER) = BEGIN rate := r; END SetRate;
             (*CACHED*) PROCEDURE Quote(n : INTEGER) : INTEGER =
             BEGIN RETURN (*UNCHECKED*) rate * n; END Quote;
             PROCEDURE Use(n : INTEGER) : INTEGER = BEGIN RETURN Quote(n); END Use;",
        );
        assert!(codes(&ds).contains(&"W07"), "{ds:?}");
        let w07 = ds.iter().find(|d| d.code == "W07").unwrap();
        assert_eq!(w07.span.line, 2, "points at the write site");
        assert!(w07.notes[0].contains("`Quote`"), "{w07:?}");

        // One checked reader is enough to make the write live again.
        let ds = lints(
            "VAR rate : INTEGER;
             PROCEDURE SetRate(r : INTEGER) = BEGIN rate := r; END SetRate;
             (*CACHED*) PROCEDURE Quote(n : INTEGER) : INTEGER =
             BEGIN RETURN rate * n; END Quote;
             PROCEDURE Use(n : INTEGER) : INTEGER = BEGIN RETURN Quote(n); END Use;",
        );
        assert!(!codes(&ds).contains(&"W07"), "{ds:?}");
    }

    #[test]
    fn w08_fires_only_when_coverage_spans_the_store() {
        let wide = lints(
            "VAR a, b, c, d : INTEGER;
             PROCEDURE Init() =
             BEGIN a := 1; b := 2; c := 3; d := 4; END Init;
             (*CACHED*) PROCEDURE Sum() : INTEGER =
             BEGIN RETURN a + b + c + d; END Sum;
             PROCEDURE Use() : INTEGER = BEGIN RETURN Sum(); END Use;",
        );
        assert_eq!(codes(&wide), ["W08"], "{wide:?}");
        assert!(wide[0].message.contains("4 of the 4 globals"), "{wide:?}");

        let narrow = lints(
            "VAR a, b, c, d, e : INTEGER;
             PROCEDURE Init() =
             BEGIN a := 1; b := 2; c := 3; d := 4; e := 5; END Init;
             (*CACHED*) PROCEDURE Sum() : INTEGER =
             BEGIN RETURN a + b + c; END Sum;
             PROCEDURE Use() : INTEGER = BEGIN RETURN Sum(); END Use;",
        );
        assert!(codes(&narrow).is_empty(), "3 of 5 is fine: {narrow:?}");
    }

    #[test]
    fn w05_ignores_progressing_recursion() {
        let ds = lints(
            "(*CACHED*) PROCEDURE Fact(n : INTEGER) : INTEGER =
             BEGIN
                IF n <= 1 THEN RETURN 1; END;
                RETURN n * Fact(n - 1);
             END Fact;",
        );
        assert!(codes(&ds).is_empty(), "`n - 1` is not `n`: {ds:?}");
    }
}
