//! Span-carrying diagnostics for the static analyses.
//!
//! The lint pass ([`crate::lints`]) and the `alphonse-check` tool report
//! their findings as [`Diagnostic`] values: an error code, a severity, a
//! one-line message anchored at a source position, and optional notes.
//! Two renderings are provided — a human one with a source excerpt and a
//! caret, and a machine-readable JSON one for CI.

use crate::token::Span;
use std::fmt::Write as _;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is judged wrong: incremental and conventional execution
    /// can observably diverge, or execution cannot terminate.
    Error,
    /// The program is suspicious but may be intentional.
    Warning,
}

impl Severity {
    /// Lowercase label used in both renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding of the static analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`W01`…`W05`, or `E00` for front-end failures).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// One-line description.
    pub message: String,
    /// Anchor position (may be [`Span::NONE`] when unknown).
    pub span: Span,
    /// Additional context lines, each rendered as a `note:`.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Appends a `note:` line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic for humans, excerpting the offending line of
    /// `source` with a caret under the anchor column:
    ///
    /// ```text
    /// warning[W02]: message …
    ///   --> demo.alf:3:12
    ///    |
    ///  3 |     RETURN (*UNCHECKED*) rate * n;
    ///    |            ^
    ///    = note: …
    /// ```
    pub fn render(&self, file: &str, source: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        );
        if self.span.is_known() {
            let _ = writeln!(out, "  --> {file}:{}", self.span);
            if let Some(text) = source.lines().nth(self.span.line as usize - 1) {
                let line_no = self.span.line.to_string();
                let gutter = " ".repeat(line_no.len());
                let _ = writeln!(out, " {gutter} |");
                let _ = writeln!(out, " {line_no} | {text}");
                let caret_pad = " ".repeat(self.span.col.saturating_sub(1) as usize);
                let _ = writeln!(out, " {gutter} | {caret_pad}^");
            }
        } else {
            let _ = writeln!(out, "  --> {file}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "   = note: {note}");
        }
        out
    }

    /// Renders the diagnostic as one JSON object.
    pub fn to_json(&self, file: &str) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"code\":{},\"severity\":{},\"message\":{},\"file\":{},\"line\":{},\"col\":{},",
            json_str(self.code),
            json_str(self.severity.label()),
            json_str(&self.message),
            json_str(file),
            self.span.line,
            self.span.col
        );
        out.push_str("\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(n));
        }
        out.push_str("]}");
        out
    }
}

/// Sorts diagnostics into the stable reporting order: by position, then
/// severity (errors first), then code, then message.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.span, a.severity, a.code, &a.message).cmp(&(b.span, b.severity, b.code, &b.message))
    });
}

/// Renders a whole report as a JSON document:
/// `{"file": …, "diagnostics": [...], "errors": n, "warnings": n}`.
pub fn report_json(file: &str, diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let body: Vec<String> = diags.iter().map(|d| d.to_json(file)).collect();
    format!(
        "{{\"file\":{},\"diagnostics\":[{}],\"errors\":{errors},\"warnings\":{warnings}}}",
        json_str(file),
        body.join(",")
    )
}

/// Escapes `s` as a JSON string literal (quotes included).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_excerpts_the_line_with_a_caret() {
        let src = "VAR g : INTEGER;\nPROCEDURE F() : INTEGER =\nBEGIN RETURN g; END F;\n";
        let d = Diagnostic::warning("W02", Span::new(3, 14), "read of mutable `g`")
            .with_note("g is written by Mutator");
        let r = d.render("demo.alf", src);
        assert!(r.contains("warning[W02]: read of mutable `g`"), "{r}");
        assert!(r.contains("--> demo.alf:3:14"), "{r}");
        assert!(r.contains(" 3 | BEGIN RETURN g; END F;"), "{r}");
        assert!(r.contains("   |              ^"), "{r}");
        assert!(r.contains("= note: g is written by Mutator"), "{r}");
    }

    #[test]
    fn unknown_spans_render_without_excerpt() {
        let d = Diagnostic::error("E00", Span::NONE, "boom");
        let r = d.render("x.alf", "line");
        assert!(r.contains("error[E00]: boom"), "{r}");
        assert!(!r.contains('^'), "{r}");
    }

    #[test]
    fn json_is_escaped_and_counted() {
        let d = Diagnostic::error("W05", Span::new(1, 2), "cycle \"a\"\n");
        let j = report_json("p.alf", &[d]);
        assert!(j.contains(r#""message":"cycle \"a\"\n""#), "{j}");
        assert!(j.contains(r#""errors":1,"warnings":0"#), "{j}");
    }

    #[test]
    fn sort_orders_by_position_then_severity() {
        let mut ds = vec![
            Diagnostic::warning("W04", Span::new(2, 1), "b"),
            Diagnostic::error("W01", Span::new(2, 1), "a"),
            Diagnostic::warning("W03", Span::new(1, 9), "c"),
        ];
        sort(&mut ds);
        let codes: Vec<_> = ds.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["W03", "W01", "W04"]);
    }
}
