//! The Alphonse-L interpreter.
//!
//! One program, two execution models (paper Theorem 5.1 promises they agree):
//!
//! * [`Mode::Conventional`] — pragmas are ignored; every call runs its body.
//!   This is the paper's "conventional execution", the baseline for
//!   experiment E2.
//! * [`Mode::Alphonse`] — the instrumented semantics of Section 5: reads and
//!   writes of heap fields and top-level variables go through `access` /
//!   `modify` (with lazy `nodeptr` creation), and calls to incremental
//!   procedures go through `call` (Algorithm 5) via the `alphonse` runtime.
//!
//! The host program plays the *mutator*: it calls procedures, reads and
//! writes globals and fields through the [`Interp`] API, and the Maintained
//! portion reacts incrementally.

use crate::analysis::{analyze_with, Instrumentation};
use crate::depgraph;
use crate::effects::infer;
use crate::error::{LangError, Result};
use crate::heap::{default_val, Heap, Slot};
use crate::hir::*;
use crate::value::{ObjId, Val};
use alphonse::trace::{ActiveTrace, TraceConfig};
use alphonse::{Memo, Runtime, Strategy as RtStrategy};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError, Weak};

/// Locks one piece of interpreter state, with the same fail-stop contract
/// the runtime uses for its own interior lock: interpreter state is only
/// ever re-entered on a bug (a procedure body calling back into a held
/// structure), so contention panics instead of deadlocking. A poisoned
/// lock (a panic elsewhere) is entered anyway — interpreter state stays
/// memory-safe and the program is already unwinding.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => {
            panic!("interpreter state re-entered while held")
        }
    }
}

/// Execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Ignore pragmas; exhaustive re-execution (the paper's conventional
    /// execution of an Alphonse-L program).
    Conventional,
    /// Incremental execution through the Alphonse runtime.
    Alphonse,
}

/// Default execution fuel (statements + expressions + calls).
const DEFAULT_FUEL: u64 = 500_000_000;

enum Flow {
    Normal,
    Return(Val),
}

/// Per-procedure argument table (paper Section 4.2), created lazily.
type ProcMemo = Memo<Vec<Val>, Val>;

/// File-name stem the interpreter passes to the shared trace-spec parser:
/// `ALPHONSE_TRACE=chrome` writes `TRACE_alphonse.json`, etc.
const TRACE_STEM: &str = "alphonse";

/// Parses `ALPHONSE_TRACE` through the shared [`TraceConfig`] grammar
/// (`1` → stderr dump, `chrome[:path]`, `dot[:path]`, `hot[:k]`,
/// `jsonl[:path]`, or a bare file path → JSONL) and attaches the resulting
/// sink — teed with a live [`alphonse::trace::Provenance`] index that
/// runtime error messages quote — to `rt`.
///
/// A malformed value is reported on stderr and ignored — an observability
/// knob must never turn a working program into a failing one.
fn trace_from_env(rt: &Runtime) -> Option<ActiveTrace> {
    let config = match TraceConfig::from_env(TRACE_STEM)? {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ALPHONSE_TRACE: {e}; tracing disabled");
            return None;
        }
    };
    match config.start() {
        Ok(active) => {
            rt.set_sink(Some(active.sink()));
            Some(active)
        }
        Err(e) => {
            eprintln!("ALPHONSE_TRACE: failed to start trace: {e}; tracing disabled");
            None
        }
    }
}

struct Shared {
    program: Arc<Program>,
    mode: Mode,
    rt: Option<Runtime>,
    /// Section 6.1 instrumentation decisions: accesses the analysis proved
    /// irrelevant bypass the runtime entirely (`None` handles below).
    instr: Instrumentation,
    /// Per-procedure static stratum from the abstract dependency graph's
    /// SCC condensation (zero for non-incremental procedures and in
    /// conventional mode). Seeded into each memo so instance nodes are
    /// born at their final height instead of cascading online raises.
    static_heights: Vec<u32>,
    /// `ALPHONSE_TRACE` consumer (with its live provenance index), flushed
    /// when the interpreter drops.
    trace: Option<ActiveTrace>,
    heap: Mutex<Heap>,
    globals: Mutex<Vec<Slot>>,
    memos: Mutex<Vec<Option<ProcMemo>>>,
    output: Mutex<String>,
    pending_error: Mutex<Option<LangError>>,
    /// Instances whose cached value was committed while an error was
    /// pending — their sentinel `Nil` results must not be reused.
    poisoned: Mutex<Vec<(ProcId, Vec<Val>)>>,
    steps: AtomicU64,
    fuel: AtomicU64,
}

/// An executable Alphonse-L program instance.
///
/// # Example
///
/// ```
/// use alphonse_lang::{compile, Interp, Mode, Val};
///
/// let program = compile(
///     "(*CACHED*) PROCEDURE Double(n : INTEGER) : INTEGER =
///      BEGIN RETURN n + n; END Double;",
/// ).unwrap();
/// let interp = Interp::new(program, Mode::Alphonse).unwrap();
/// assert_eq!(interp.call("Double", vec![Val::Int(21)]).unwrap(), Val::Int(42));
/// ```
pub struct Interp {
    shared: Arc<Shared>,
}

impl fmt::Debug for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("mode", &self.shared.mode)
            .field("objects", &lock(&self.shared.heap).len())
            .finish()
    }
}

impl Interp {
    /// Creates an interpreter for `program`, running top-level variable
    /// initializers. In [`Mode::Alphonse`] a default [`Runtime`] is built.
    ///
    /// # Errors
    ///
    /// Returns a runtime error if a global initializer fails.
    pub fn new(program: Arc<Program>, mode: Mode) -> Result<Interp> {
        let rt = match mode {
            Mode::Conventional => None,
            Mode::Alphonse => Some(Runtime::new()),
        };
        Self::build(program, mode, rt)
    }

    /// Creates an Alphonse-mode interpreter over a caller-configured
    /// runtime (partitioning, scheduling, …).
    ///
    /// # Errors
    ///
    /// Returns a runtime error if a global initializer fails.
    pub fn with_runtime(program: Arc<Program>, rt: Runtime) -> Result<Interp> {
        Self::build(program, Mode::Alphonse, Some(rt))
    }

    fn build(program: Arc<Program>, mode: Mode, rt: Option<Runtime>) -> Result<Interp> {
        let n_procs = program.procs.len();
        let globals = program
            .globals
            .iter()
            .map(|g| Slot::new(default_val(g.ty)))
            .collect();
        let trace = rt.as_ref().and_then(trace_from_env);
        let effects = infer(&program);
        let instr = analyze_with(&program, &effects);
        // Static strata only matter when the runtime will build a graph.
        // Cached on the program: the graph is a pure function of it, and
        // re-deriving it on every interpreter construction would tax the
        // instantiate-per-request pattern (and the E2 init measurements).
        let static_heights = match mode {
            Mode::Alphonse => program
                .static_heights
                .get_or_init(|| {
                    let graph = depgraph::build(&program, &effects);
                    (0..n_procs)
                        .map(|p| graph.proc_height(p).unwrap_or(0))
                        .collect()
                })
                .clone(),
            Mode::Conventional => vec![0; n_procs],
        };
        let shared = Arc::new(Shared {
            program,
            mode,
            rt,
            instr,
            static_heights,
            trace,
            heap: Mutex::new(Heap::new()),
            globals: Mutex::new(globals),
            memos: Mutex::new(vec![None; n_procs]),
            output: Mutex::new(String::new()),
            pending_error: Mutex::new(None),
            poisoned: Mutex::new(Vec::new()),
            steps: AtomicU64::new(0),
            fuel: AtomicU64::new(DEFAULT_FUEL),
        });
        // Run global initializers in declaration order (mutator context).
        let inits: Vec<(usize, HExpr)> = shared
            .program
            .globals
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.init.clone().map(|e| (i, e)))
            .collect();
        for (i, init) in inits {
            let mut frame = Vec::new();
            let v = shared.eval_expr(&init, &mut frame)?;
            lock(&shared.globals)[i].write(shared.rt_global(i), v);
        }
        Ok(Interp { shared })
    }

    /// The execution model in use.
    pub fn mode(&self) -> Mode {
        self.shared.mode
    }

    /// The resolved program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.shared.program
    }

    /// The Alphonse runtime ([`None`] in conventional mode).
    pub fn runtime(&self) -> Option<&Runtime> {
        self.shared.rt.as_ref()
    }

    /// The Section 6.1 instrumentation decisions this interpreter executes
    /// under (computed for every program, in both modes).
    pub fn instrumentation(&self) -> &Instrumentation {
        &self.shared.instr
    }

    /// Statements/expressions/calls executed so far — the
    /// machine-independent `T` of the paper's Section 9.2.
    pub fn steps(&self) -> u64 {
        self.shared.steps.load(Ordering::Relaxed)
    }

    /// Sets the remaining execution fuel (guards against runaway programs).
    pub fn set_fuel(&self, fuel: u64) {
        self.shared.fuel.store(fuel, Ordering::Relaxed);
    }

    /// Everything `Print` produced so far.
    pub fn output(&self) -> String {
        lock(&self.shared.output).clone()
    }

    /// Returns and clears the accumulated output.
    pub fn take_output(&self) -> String {
        std::mem::take(&mut *lock(&self.shared.output))
    }

    /// Number of heap objects allocated.
    pub fn heap_objects(&self) -> usize {
        lock(&self.shared.heap).len()
    }

    /// Number of storage locations promoted to tracked status (Alphonse
    /// mode only; 0 otherwise).
    pub fn tracked_slots(&self) -> usize {
        lock(&self.shared.heap).tracked_slots()
    }

    /// Runs pending change propagation (no-op in conventional mode).
    ///
    /// # Errors
    ///
    /// Surfaces any runtime error raised by an eager procedure during
    /// propagation; the failing instances are un-cached so they re-execute
    /// on the next demand.
    pub fn propagate(&self) -> Result<()> {
        if let Some(rt) = &self.shared.rt {
            rt.propagate();
        }
        self.boundary(Ok(()))
    }

    fn boundary<T>(&self, r: Result<T>) -> Result<T> {
        // Surface an error trapped inside a memoized execution (annotated
        // with its causal provenance while the failing instance still
        // exists), and forget every sentinel value it left behind.
        let pending = lock(&self.shared.pending_error).take();
        let pending = pending.map(|e| self.shared.annotate_error(e));
        self.shared.drain_poisoned();
        if let Some(e) = pending {
            return Err(e);
        }
        r
    }

    /// Calls a top-level procedure by name (mutator → Maintained portion).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Resolve`] for unknown names and
    /// [`LangError::Runtime`] for execution failures.
    pub fn call(&self, name: &str, args: Vec<Val>) -> Result<Val> {
        let pid = *self
            .shared
            .program
            .proc_by_name
            .get(name)
            .ok_or_else(|| LangError::resolve(format!("unknown procedure {name}")))?;
        let r = self.shared.call_proc(pid, args);
        self.boundary(r)
    }

    /// Calls a method on an object by name, with dynamic dispatch.
    ///
    /// # Errors
    ///
    /// Returns an error if `recv` is not an object, the method is unknown,
    /// or execution fails.
    pub fn call_method(&self, recv: Val, method: &str, mut args: Vec<Val>) -> Result<Val> {
        let Val::Obj(o) = recv else {
            return Err(LangError::runtime(format!(
                "method call .{method}() on non-object {recv}"
            )));
        };
        let ty = lock(&self.shared.heap).type_of(o);
        let slot = self.shared.program.method_slot(ty, method).ok_or_else(|| {
            LangError::resolve(format!(
                "type {} has no method {method}",
                self.shared.program.types[ty].name
            ))
        })?;
        let pid = self.shared.program.types[ty].methods[slot].impl_proc;
        args.insert(0, Val::Obj(o));
        let r = self.shared.call_proc(pid, args);
        self.boundary(r)
    }

    /// Reads a top-level variable (mutator read: never records dependence).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Resolve`] for unknown names.
    pub fn global(&self, name: &str) -> Result<Val> {
        let idx = self.global_index(name)?;
        let shared = &self.shared;
        Ok(lock(&shared.globals)[idx].read(shared.rt_global(idx), || {
            format!("g:{}", shared.program.globals[idx].name)
        }))
    }

    /// Writes a top-level variable (a mutator state change; seeds change
    /// propagation in Alphonse mode).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Resolve`] for unknown names.
    pub fn set_global(&self, name: &str, v: Val) -> Result<()> {
        let idx = self.global_index(name)?;
        lock(&self.shared.globals)[idx].write(self.shared.rt_global(idx), v);
        Ok(())
    }

    /// Writes several top-level variables in one write transaction — the
    /// bulk form of [`Interp::set_global`]. All names are resolved before
    /// anything is written, so an unknown name leaves every global
    /// untouched. In Alphonse mode the tracked writes commit as a single
    /// coalesced dirty frontier (repeated writes to one global follow
    /// last-write-wins); in conventional mode this is a plain loop.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Resolve`] for unknown names.
    pub fn set_globals<'a>(&self, edits: impl IntoIterator<Item = (&'a str, Val)>) -> Result<()> {
        let mut resolved = Vec::new();
        for (name, v) in edits {
            resolved.push((self.global_index(name)?, v));
        }
        let mut globals = lock(&self.shared.globals);
        match self.shared.rt.as_ref() {
            Some(rt) => rt.batch(|tx| {
                for (idx, v) in resolved {
                    globals[idx].write_in(tx, v);
                }
            }),
            None => {
                for (idx, v) in resolved {
                    globals[idx].write(None, v);
                }
            }
        }
        Ok(())
    }

    fn global_index(&self, name: &str) -> Result<usize> {
        self.shared
            .program
            .global_by_name
            .get(name)
            .copied()
            .ok_or_else(|| LangError::resolve(format!("unknown global {name}")))
    }

    /// Allocates an object of the named type (host-side `NEW`).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Resolve`] for unknown types.
    pub fn new_object(&self, type_name: &str) -> Result<Val> {
        let ty = *self
            .shared
            .program
            .type_by_name
            .get(type_name)
            .ok_or_else(|| LangError::resolve(format!("unknown type {type_name}")))?;
        Ok(Val::Obj(self.shared.alloc(ty)))
    }

    /// Reads `obj.field` (mutator read).
    ///
    /// # Errors
    ///
    /// Returns an error if `obj` is not an object or has no such field.
    pub fn field(&self, obj: &Val, field: &str) -> Result<Val> {
        let (o, off) = self.field_ref(obj, field)?;
        Ok(lock(&self.shared.heap).read_field(self.shared.rt_field(off), o, off))
    }

    /// Writes `obj.field` (a mutator state change).
    ///
    /// # Errors
    ///
    /// Returns an error if `obj` is not an object or has no such field.
    pub fn set_field(&self, obj: &Val, field: &str, v: Val) -> Result<()> {
        let (o, off) = self.field_ref(obj, field)?;
        lock(&self.shared.heap).write_field(self.shared.rt_field(off), o, off, v);
        Ok(())
    }

    /// Writes several object fields in one write transaction — the bulk
    /// form of [`Interp::set_field`]. All targets are resolved before
    /// anything is written, so a bad target leaves the heap untouched.
    /// Fields already promoted to tracked storage commit as one coalesced
    /// dirty frontier; still-plain fields are stored immediately (writes
    /// never create dependency-graph nodes, per Algorithm 4).
    ///
    /// # Errors
    ///
    /// Returns an error if any target is not an object or has no such
    /// field.
    pub fn set_fields<'a>(
        &self,
        edits: impl IntoIterator<Item = (&'a Val, &'a str, Val)>,
    ) -> Result<()> {
        let mut resolved = Vec::new();
        for (obj, field, v) in edits {
            let (o, off) = self.field_ref(obj, field)?;
            resolved.push((o, off, v));
        }
        let mut heap = lock(&self.shared.heap);
        match self.shared.rt.as_ref() {
            Some(rt) => rt.batch(|tx| {
                for (o, off, v) in resolved {
                    heap.write_field_in(tx, o, off, v);
                }
            }),
            None => {
                for (o, off, v) in resolved {
                    heap.write_field(None, o, off, v);
                }
            }
        }
        Ok(())
    }

    /// Writes several elements of one array in one write transaction. All
    /// indices are bounds-checked before anything is written, so a bad
    /// index leaves the array untouched. Elements already promoted to
    /// tracked storage commit as one coalesced dirty frontier; still-plain
    /// elements are stored immediately.
    ///
    /// # Errors
    ///
    /// Returns an error if `arr` is not an array or any index is out of
    /// bounds.
    pub fn set_elements(
        &self,
        arr: &Val,
        edits: impl IntoIterator<Item = (i64, Val)>,
    ) -> Result<()> {
        let Val::Arr(a) = arr else {
            return Err(LangError::runtime(format!(
                "element assignment on non-array {arr}"
            )));
        };
        let mut heap = lock(&self.shared.heap);
        let len = heap.array_len(*a);
        let mut resolved = Vec::new();
        for (i, v) in edits {
            if usize::try_from(i).ok().filter(|&i| i < len).is_none() {
                return Err(LangError::runtime(format!(
                    "element index {i} out of bounds for array of length {len}"
                )));
            }
            resolved.push((i, v));
        }
        match self.shared.rt.as_ref() {
            Some(rt) => rt.batch(|tx| {
                for (i, v) in resolved {
                    heap.write_element_in(tx, *a, i, v);
                }
            }),
            None => {
                for (i, v) in resolved {
                    heap.write_element(None, *a, i, v);
                }
            }
        }
        Ok(())
    }

    fn field_ref(&self, obj: &Val, field: &str) -> Result<(ObjId, usize)> {
        let Val::Obj(o) = obj else {
            return Err(LangError::runtime(format!(
                "field access .{field} on non-object {obj}"
            )));
        };
        let ty = lock(&self.shared.heap).type_of(*o);
        let off = self.shared.program.field_offset(ty, field).ok_or_else(|| {
            LangError::resolve(format!(
                "type {} has no field {field}",
                self.shared.program.types[ty].name
            ))
        })?;
        Ok((*o, off))
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        if let Some(active) = self.trace.take() {
            if let Some(rt) = self.rt.as_ref() {
                rt.set_sink(None);
            }
            match active.finish(self.rt.as_ref()) {
                Ok(Some(msg)) => eprintln!("ALPHONSE_TRACE: {msg}"),
                Ok(None) => {}
                Err(e) => eprintln!("ALPHONSE_TRACE: failed to write trace: {e}"),
            }
        }
    }
}

impl Shared {
    /// Runtime handle for an access to global `idx` — `None` when the
    /// Section 6.1 analysis proved the access can never involve a node.
    fn rt_global(&self, idx: usize) -> Option<&Runtime> {
        self.rt
            .as_ref()
            .filter(|_| self.instr.global_needs_check(idx))
    }

    /// Runtime handle for an access to a field at `offset` (see
    /// [`Shared::rt_global`]).
    fn rt_field(&self, offset: usize) -> Option<&Runtime> {
        self.rt
            .as_ref()
            .filter(|_| self.instr.field_offset_needs_check(offset))
    }

    /// Runtime handle for an array element access (see
    /// [`Shared::rt_global`]).
    fn rt_arrays(&self) -> Option<&Runtime> {
        self.rt.as_ref().filter(|_| self.instr.tracked_arrays)
    }

    /// True if a read performed right now would record a dependence edge.
    /// A statically pruned read must never happen in such a context (only
    /// consulted by debug assertions; optimized out of release builds).
    fn recording(&self) -> bool {
        self.rt.as_ref().is_some_and(Runtime::recording_context)
    }

    fn alloc(&self, ty: TypeId) -> ObjId {
        let field_types: Vec<Ty> = self.program.types[ty].fields.iter().map(|f| f.ty).collect();
        lock(&self.heap).alloc(ty, &field_types)
    }

    fn burn(&self) -> Result<()> {
        self.steps.fetch_add(1, Ordering::Relaxed);
        let f = self.fuel.load(Ordering::Relaxed);
        if f == 0 {
            return Err(LangError::runtime("execution fuel exhausted"));
        }
        self.fuel.store(f - 1, Ordering::Relaxed);
        Ok(())
    }

    /// Appends a causal provenance note to a runtime error when tracing is
    /// active: the `why` chain (input write → fan-out → re-execution) of
    /// the first instance that failed under the error. Must run *before*
    /// [`Shared::drain_poisoned`] — forgetting the instance discards the
    /// node the chain is anchored to — which also makes it idempotent: once
    /// drained, there is nothing left to annotate.
    fn annotate_error(&self, e: LangError) -> LangError {
        let LangError::Runtime { message } = &e else {
            return e;
        };
        let Some(active) = self.trace.as_ref() else {
            return e;
        };
        let Some((pid, args)) = lock(&self.poisoned).first().cloned() else {
            return e;
        };
        let Some(memo) = lock(&self.memos)[pid].clone() else {
            return e;
        };
        let Some(n) = memo.instance_node(&args) else {
            return e;
        };
        let Some(report) = active.provenance().why_report(n) else {
            return e;
        };
        LangError::runtime(format!(
            "{message}\nprovenance of the failing call:\n{report}"
        ))
    }

    /// Un-caches every instance whose value was committed under a pending
    /// error, so failed computations re-execute instead of replaying a
    /// sentinel `Nil`.
    fn drain_poisoned(&self) {
        let Some(rt) = self.rt.as_ref() else { return };
        let poisoned = std::mem::take(&mut *lock(&self.poisoned));
        for (pid, args) in poisoned {
            if let Some(memo) = lock(&self.memos)[pid].clone() {
                memo.forget(rt, &args);
            }
        }
    }

    /// Calls a procedure: through its memo (Algorithm 5) when it is an
    /// incremental procedure and the mode is Alphonse, directly otherwise.
    fn call_proc(self: &Arc<Self>, pid: ProcId, args: Vec<Val>) -> Result<Val> {
        self.burn()?;
        if self.mode == Mode::Alphonse && self.program.procs[pid].incremental.is_some() {
            let memo = self.memo_for(pid);
            let rt = self.rt.as_ref().expect("Alphonse mode has a runtime");
            // A pure combinator depends only on its arguments: no state
            // change can ever invalidate its instances, so the caller need
            // not record a dependence on them. The memo still runs the call
            // (preserving caching, LRU bounds, and cycle detection); only
            // the caller→instance edge is suppressed.
            let out = if self.instr.pure_procs[pid] {
                rt.untracked(|| memo.call(rt, args))
            } else {
                memo.call(rt, args)
            };
            let pending = lock(&self.pending_error).clone();
            if let Some(e) = pending {
                let e = self.annotate_error(e);
                *lock(&self.pending_error) = Some(e.clone());
                self.drain_poisoned();
                return Err(e);
            }
            Ok(out)
        } else {
            self.execute_proc(pid, args)
        }
    }

    /// Gets or creates the memo (argument table) for an incremental
    /// procedure.
    fn memo_for(self: &Arc<Self>, pid: ProcId) -> ProcMemo {
        if let Some(m) = &lock(&self.memos)[pid] {
            return m.clone();
        }
        let info = &self.program.procs[pid];
        let (_, strategy) = info.incremental.expect("memo_for on incremental proc");
        let rt_strategy = match strategy {
            Strategy::Demand => RtStrategy::Demand,
            Strategy::Eager => RtStrategy::Eager,
        };
        let weak: Weak<Shared> = Arc::downgrade(self);
        let rt = self.rt.as_ref().expect("Alphonse mode has a runtime");
        let body = move |_rt: &Runtime, args: &Vec<Val>| {
            let shared = weak.upgrade().expect("interpreter dropped during call");
            let out = match shared.execute_proc(pid, args.clone()) {
                Ok(v) => v,
                Err(e) => {
                    lock(&shared.pending_error).get_or_insert(e);
                    Val::Nil
                }
            };
            // Any value committed while an error is pending is a sentinel
            // (either this body failed, or the quick-unwind skipped it); it
            // must be forgotten before the cache can be trusted again.
            if lock(&shared.pending_error).is_some() {
                lock(&shared.poisoned).push((pid, args.clone()));
            }
            out
        };
        let memo = match info.cache_capacity {
            Some(capacity) => rt.memo_bounded(&info.name, rt_strategy, capacity, body),
            None => rt.memo_with(&info.name, rt_strategy, body),
        };
        // Seed instance nodes at their static stratum (experiment E2):
        // correctness-neutral, but skips the online height-raise cascade.
        memo.set_height_hint(self.static_heights[pid]);
        lock(&self.memos)[pid] = Some(memo.clone());
        memo
    }

    /// Runs a procedure body in a fresh frame.
    fn execute_proc(self: &Arc<Self>, pid: ProcId, args: Vec<Val>) -> Result<Val> {
        if lock(&self.pending_error).is_some() {
            // An inner memoized execution already failed; unwind quickly.
            return Ok(Val::Nil);
        }
        let info = &self.program.procs[pid];
        debug_assert_eq!(args.len(), info.params.len(), "arity checked statically");
        let mut frame = args;
        frame.resize(info.frame_size, Val::Nil);
        for (slot, ty, init) in &info.local_inits {
            let v = match init {
                Some(e) => self.eval_expr(e, &mut frame)?,
                None => default_val(*ty),
            };
            frame[*slot] = v;
        }
        match self.eval_stmts(&info.body, &mut frame)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => {
                if info.ret.is_some() {
                    Err(LangError::runtime(format!(
                        "function procedure {} finished without RETURN",
                        info.name
                    )))
                } else {
                    Ok(Val::Nil)
                }
            }
        }
    }

    fn eval_stmts(self: &Arc<Self>, stmts: &[HStmt], frame: &mut Vec<Val>) -> Result<Flow> {
        for s in stmts {
            if let Flow::Return(v) = self.eval_stmt(s, frame)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn eval_stmt(self: &Arc<Self>, stmt: &HStmt, frame: &mut Vec<Val>) -> Result<Flow> {
        self.burn()?;
        match stmt {
            HStmt::AssignLocal { slot, value } => {
                let v = self.eval_expr(value, frame)?;
                frame[*slot] = v;
                Ok(Flow::Normal)
            }
            HStmt::AssignGlobal { index, value, .. } => {
                let v = self.eval_expr(value, frame)?;
                lock(&self.globals)[*index].write(self.rt_global(*index), v);
                Ok(Flow::Normal)
            }
            HStmt::AssignIndex {
                arr, index, value, ..
            } => {
                let a = self.eval_expr(arr, frame)?;
                let i = self.eval_expr(index, frame)?.as_int();
                let v = self.eval_expr(value, frame)?;
                let Val::Arr(a) = a else {
                    return Err(LangError::runtime("element assignment to NIL array"));
                };
                if !lock(&self.heap).write_element(self.rt_arrays(), a, i, v) {
                    return Err(LangError::runtime(format!("array index {i} out of bounds")));
                }
                Ok(Flow::Normal)
            }
            HStmt::AssignField {
                obj, field, value, ..
            } => {
                let o = self.eval_expr(obj, frame)?;
                let v = self.eval_expr(value, frame)?;
                let Val::Obj(o) = o else {
                    return Err(LangError::runtime("field assignment to NIL"));
                };
                lock(&self.heap).write_field(self.rt_field(*field), o, *field, v);
                Ok(Flow::Normal)
            }
            HStmt::If { arms, else_body } => {
                for (cond, body) in arms {
                    if self.eval_expr(cond, frame)?.as_bool() {
                        return self.eval_stmts(body, frame);
                    }
                }
                self.eval_stmts(else_body, frame)
            }
            HStmt::While { cond, body } => {
                while self.eval_expr(cond, frame)?.as_bool() {
                    self.burn()?;
                    if let Flow::Return(v) = self.eval_stmts(body, frame)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            HStmt::For {
                slot,
                from,
                to,
                by,
                body,
            } => {
                let from = self.eval_expr(from, frame)?.as_int();
                let to = self.eval_expr(to, frame)?.as_int();
                let step = match by {
                    Some(e) => self.eval_expr(e, frame)?.as_int(),
                    None => 1,
                };
                if step == 0 {
                    return Err(LangError::runtime("FOR step of 0"));
                }
                let mut i = from;
                while (step > 0 && i <= to) || (step < 0 && i >= to) {
                    self.burn()?;
                    frame[*slot] = Val::Int(i);
                    if let Flow::Return(v) = self.eval_stmts(body, frame)? {
                        return Ok(Flow::Return(v));
                    }
                    i = match i.checked_add(step) {
                        Some(next) => next,
                        None => break,
                    };
                }
                Ok(Flow::Normal)
            }
            HStmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval_expr(e, frame)?,
                    None => Val::Nil,
                };
                Ok(Flow::Return(v))
            }
            HStmt::Expr(e) => {
                self.eval_expr(e, frame)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn eval_expr(self: &Arc<Self>, e: &HExpr, frame: &mut Vec<Val>) -> Result<Val> {
        self.burn()?;
        match e {
            HExpr::Int(v) => Ok(Val::Int(*v)),
            HExpr::Text(s) => Ok(Val::Text(Arc::clone(s))),
            HExpr::Bool(b) => Ok(Val::Bool(*b)),
            HExpr::Nil => Ok(Val::Nil),
            HExpr::Local(slot) => Ok(frame[*slot].clone()),
            HExpr::Global(idx) => {
                let rt = self.rt_global(*idx);
                debug_assert!(rt.is_some() || !self.recording(), "pruned a recorded read");
                Ok(lock(&self.globals)[*idx]
                    .read(rt, || format!("g:{}", self.program.globals[*idx].name)))
            }
            HExpr::Field { obj, field } => {
                let o = self.eval_expr(obj, frame)?;
                let Val::Obj(o) = o else {
                    return Err(LangError::runtime("field access on NIL"));
                };
                let rt = self.rt_field(*field);
                debug_assert!(rt.is_some() || !self.recording(), "pruned a recorded read");
                Ok(lock(&self.heap).read_field(rt, o, *field))
            }
            HExpr::New(ty) => Ok(Val::Obj(self.alloc(*ty))),
            HExpr::NewArray { elem, size } => {
                let n = self.eval_expr(size, frame)?.as_int();
                let n = usize::try_from(n)
                    .map_err(|_| LangError::runtime(format!("negative array size {n}")))?;
                Ok(Val::Arr(lock(&self.heap).alloc_array(*elem, n)))
            }
            HExpr::Index { arr, index } => {
                let a = self.eval_expr(arr, frame)?;
                let i = self.eval_expr(index, frame)?.as_int();
                let Val::Arr(a) = a else {
                    return Err(LangError::runtime("indexing NIL array"));
                };
                let rt = self.rt_arrays();
                debug_assert!(rt.is_some() || !self.recording(), "pruned a recorded read");
                lock(&self.heap)
                    .read_element(rt, a, i)
                    .ok_or_else(|| LangError::runtime(format!("array index {i} out of bounds")))
            }
            HExpr::CallProc { proc, args } => {
                let argv = self.eval_args(args, frame)?;
                self.call_proc(*proc, argv)
            }
            HExpr::CallMethod {
                obj, slot, args, ..
            } => {
                let recv = self.eval_expr(obj, frame)?;
                let Val::Obj(o) = recv else {
                    return Err(LangError::runtime("method call on NIL"));
                };
                let ty = lock(&self.heap).type_of(o);
                let pid = self.program.types[ty].methods[*slot].impl_proc;
                let mut argv = self.eval_args(args, frame)?;
                argv.insert(0, Val::Obj(o));
                self.call_proc(pid, argv)
            }
            HExpr::CallBuiltin { builtin, args } => {
                let argv = self.eval_args(args, frame)?;
                self.builtin(*builtin, argv)
            }
            HExpr::Unary { op, expr } => {
                let v = self.eval_expr(expr, frame)?;
                Ok(match op {
                    crate::ast::UnOp::Neg => Val::Int(v.as_int().wrapping_neg()),
                    crate::ast::UnOp::Not => Val::Bool(!v.as_bool()),
                })
            }
            HExpr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, frame),
            HExpr::Unchecked { expr: inner, .. } => match &self.rt {
                Some(rt) => {
                    let rt = rt.clone();
                    rt.untracked(|| self.eval_expr(inner, frame))
                }
                None => self.eval_expr(inner, frame),
            },
        }
    }

    fn eval_args(self: &Arc<Self>, args: &[HExpr], frame: &mut Vec<Val>) -> Result<Vec<Val>> {
        args.iter().map(|a| self.eval_expr(a, frame)).collect()
    }

    fn binary(
        self: &Arc<Self>,
        op: crate::ast::BinOp,
        lhs: &HExpr,
        rhs: &HExpr,
        frame: &mut Vec<Val>,
    ) -> Result<Val> {
        use crate::ast::BinOp as B;
        // Short-circuit forms first.
        match op {
            B::And => {
                return Ok(Val::Bool(
                    self.eval_expr(lhs, frame)?.as_bool() && self.eval_expr(rhs, frame)?.as_bool(),
                ))
            }
            B::Or => {
                return Ok(Val::Bool(
                    self.eval_expr(lhs, frame)?.as_bool() || self.eval_expr(rhs, frame)?.as_bool(),
                ))
            }
            _ => {}
        }
        let l = self.eval_expr(lhs, frame)?;
        let r = self.eval_expr(rhs, frame)?;
        Ok(match op {
            B::Add => Val::Int(l.as_int().wrapping_add(r.as_int())),
            B::Sub => Val::Int(l.as_int().wrapping_sub(r.as_int())),
            B::Mul => Val::Int(l.as_int().wrapping_mul(r.as_int())),
            B::Div => {
                let d = r.as_int();
                if d == 0 {
                    return Err(LangError::runtime("DIV by zero"));
                }
                Val::Int(l.as_int().wrapping_div(d))
            }
            B::Mod => {
                let d = r.as_int();
                if d == 0 {
                    return Err(LangError::runtime("MOD by zero"));
                }
                Val::Int(l.as_int().wrapping_rem(d))
            }
            B::Concat => match (l, r) {
                (Val::Text(a), Val::Text(b)) => Val::Text(Arc::from(format!("{a}{b}").as_str())),
                _ => return Err(LangError::runtime("& on non-text values")),
            },
            B::Eq => Val::Bool(l == r),
            B::Ne => Val::Bool(l != r),
            B::Lt => Val::Bool(l.as_int() < r.as_int()),
            B::Le => Val::Bool(l.as_int() <= r.as_int()),
            B::Gt => Val::Bool(l.as_int() > r.as_int()),
            B::Ge => Val::Bool(l.as_int() >= r.as_int()),
            B::And | B::Or => unreachable!("handled above"),
        })
    }

    fn builtin(&self, b: Builtin, args: Vec<Val>) -> Result<Val> {
        Ok(match b {
            Builtin::Max => Val::Int(args[0].as_int().max(args[1].as_int())),
            Builtin::Min => Val::Int(args[0].as_int().min(args[1].as_int())),
            Builtin::Abs => Val::Int(args[0].as_int().wrapping_abs()),
            Builtin::Len => {
                let Val::Arr(a) = args[0] else {
                    return Err(LangError::runtime("LEN of NIL array"));
                };
                Val::Int(lock(&self.heap).array_len(a) as i64)
            }
            Builtin::Print => {
                use std::fmt::Write;
                let _ = writeln!(lock(&self.output), "{}", args[0]);
                Val::Nil
            }
        })
    }
}
