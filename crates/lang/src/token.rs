//! Tokens of Alphonse-L.
//!
//! Alphonse-L is the paper's `Alphonse-L` instantiated with a Modula-3
//! flavoured base language `L` (Section 3.2 uses Modula-3 notation). The
//! Alphonse pragmas are comments to the base language, exactly as in the
//! paper: `(*MAINTAINED*)`, `(*CACHED*)` (each optionally with a `DEMAND` or
//! `EAGER` evaluation strategy argument) and `(*UNCHECKED*)`.

use std::fmt;

/// Evaluation strategy named in a pragma (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaStrategy {
    /// Update lazily on calls (`DEMAND`, the default).
    Demand,
    /// Update during change propagation (`EAGER`).
    Eager,
}

/// An Alphonse pragma recognized by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pragma {
    /// `(*MAINTAINED*)` — marks a method as incrementally maintained.
    Maintained(PragmaStrategy),
    /// `(*CACHED*)` — marks a procedure as function-cached, optionally
    /// with an LRU cache capacity (`(*CACHED LRU 64*)`) — the paper's
    /// cache-size / replacement-algorithm pragma arguments (Section 3.3).
    Cached(PragmaStrategy, Option<u32>),
    /// `(*UNCHECKED*)` — suppresses dependence recording for the following
    /// expression (Section 6.4).
    Unchecked,
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    // Literals and identifiers.
    /// Integer literal.
    Int(i64),
    /// Text (string) literal.
    Text(String),
    /// Identifier.
    Ident(String),
    /// Alphonse pragma comment.
    Pragma(Pragma),

    // Keywords.
    /// `TYPE`
    Type,
    /// `OBJECT`
    Object,
    /// `METHODS`
    Methods,
    /// `OVERRIDES`
    Overrides,
    /// `END`
    End,
    /// `PROCEDURE`
    Procedure,
    /// `BEGIN`
    Begin,
    /// `VAR`
    Var,
    /// `IF`
    If,
    /// `THEN`
    Then,
    /// `ELSIF`
    Elsif,
    /// `ELSE`
    Else,
    /// `WHILE`
    While,
    /// `DO`
    Do,
    /// `FOR`
    For,
    /// `TO`
    To,
    /// `BY`
    By,
    /// `RETURN`
    Return,
    /// `NEW`
    New,
    /// `NIL`
    Nil,
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// `DIV`
    Div,
    /// `MOD`
    Mod,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `ARRAY`
    Array,
    /// `OF`
    Of,

    // Punctuation and operators.
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `#`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Text(s) => write!(f, "{s:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Pragma(p) => write!(f, "(*{p:?}*)"),
            Token::Type => write!(f, "TYPE"),
            Token::Object => write!(f, "OBJECT"),
            Token::Methods => write!(f, "METHODS"),
            Token::Overrides => write!(f, "OVERRIDES"),
            Token::End => write!(f, "END"),
            Token::Procedure => write!(f, "PROCEDURE"),
            Token::Begin => write!(f, "BEGIN"),
            Token::Var => write!(f, "VAR"),
            Token::If => write!(f, "IF"),
            Token::Then => write!(f, "THEN"),
            Token::Elsif => write!(f, "ELSIF"),
            Token::Else => write!(f, "ELSE"),
            Token::While => write!(f, "WHILE"),
            Token::Do => write!(f, "DO"),
            Token::For => write!(f, "FOR"),
            Token::To => write!(f, "TO"),
            Token::By => write!(f, "BY"),
            Token::Return => write!(f, "RETURN"),
            Token::New => write!(f, "NEW"),
            Token::Nil => write!(f, "NIL"),
            Token::True => write!(f, "TRUE"),
            Token::False => write!(f, "FALSE"),
            Token::Div => write!(f, "DIV"),
            Token::Mod => write!(f, "MOD"),
            Token::And => write!(f, "AND"),
            Token::Or => write!(f, "OR"),
            Token::Not => write!(f, "NOT"),
            Token::Array => write!(f, "ARRAY"),
            Token::Of => write!(f, "OF"),
            Token::Assign => write!(f, ":="),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "#"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Amp => write!(f, "&"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
        }
    }
}

/// A source position: 1-based line and column.
///
/// Alphonse-L diagnostics are point spans — enough to render a caret under
/// the offending token. `Span::NONE` (line 0) marks synthesized nodes with
/// no source position, e.g. AST produced by the Section 5 transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based source line; 0 when unknown.
    pub line: u32,
    /// 1-based column (in characters); 0 when unknown.
    pub col: u32,
}

impl Span {
    /// The "no position" span used for synthesized nodes.
    pub const NONE: Span = Span { line: 0, col: 0 };

    /// Builds a span from a line/column pair.
    pub const fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// True if this span carries a real source position.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A token together with its source position for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token itself.
    pub token: Token,
    /// Position of the token's first character.
    pub span: Span,
}
