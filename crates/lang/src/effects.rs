//! Per-procedure effect inference over the HIR.
//!
//! This is the static half of the paper's Section 6: for every procedure we
//! compute which top-level storage classes it reads and writes — globals
//! (by index), object fields (by flattened offset), and arrays — both
//! directly and transitively through calls. Method dispatch is resolved by
//! name: a call of method `m` may land on any implementation of an `m`
//! slot, so its effects are the union over those implementations.
//!
//! On top of the fixpoint the table classifies procedures:
//!
//! * **pure combinators** — procedures whose result depends only on their
//!   arguments (no global/field/array reads or writes, no allocation, no
//!   output, no `(*UNCHECKED*)` reads, no dynamic dispatch, all callees
//!   pure). These are the paper's combinators in the strict Section 4
//!   sense; a cached pure procedure needs no `R(p)` global encoding and no
//!   dependence edges pointing at its instances.
//! * **reachable from an incremental root** — the Section 6.1 reachability
//!   used to prune instrumentation (see [`crate::analysis`]).
//!
//! The table also keeps per-site facts (write sites, `(*UNCHECKED*)`
//! regions, identity-argument calls) that the lint pass
//! ([`crate::lints`]) turns into span-carrying diagnostics.

use crate::hir::{Builtin, HExpr, HStmt, ProcId, Program};
use crate::token::Span;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A class of top-level storage, as tracked by the analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Loc {
    /// A top-level variable, by global index.
    Global(usize),
    /// An object field, by flattened offset.
    Field(usize),
    /// Any array element (arrays are tracked as one class).
    Arrays,
}

/// Describes a location with source-level names for diagnostics.
pub fn describe_loc(program: &Program, loc: Loc) -> String {
    match loc {
        Loc::Global(i) => format!("global `{}`", program.globals[i].name),
        Loc::Field(off) => {
            let mut names: Vec<&str> = program
                .types
                .iter()
                .filter_map(|t| t.fields.get(off).map(|f| f.name.as_str()))
                .collect();
            names.sort_unstable();
            names.dedup();
            if names.is_empty() {
                format!("field at offset {off}")
            } else {
                format!("field `{}`", names.join("`/`"))
            }
        }
        Loc::Arrays => "array elements".to_string(),
    }
}

/// A set of read/written storage classes plus the non-storage effects that
/// matter for purity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSet {
    /// Globals read (checked reads only — `(*UNCHECKED*)` reads are kept
    /// separately).
    pub reads_globals: BTreeSet<usize>,
    /// Globals written.
    pub writes_globals: BTreeSet<usize>,
    /// Field offsets read.
    pub reads_fields: BTreeSet<usize>,
    /// Field offsets written.
    pub writes_fields: BTreeSet<usize>,
    /// Reads any array element.
    pub reads_arrays: bool,
    /// Writes any array element.
    pub writes_arrays: bool,
    /// Allocates objects or arrays (`NEW`).
    pub allocates: bool,
    /// Produces output (`Print`).
    pub prints: bool,
}

impl EffectSet {
    /// Unions `other` into `self`; returns `true` if anything changed.
    fn absorb(&mut self, other: &EffectSet) -> bool {
        let before = (
            self.reads_globals.len(),
            self.writes_globals.len(),
            self.reads_fields.len(),
            self.writes_fields.len(),
            self.reads_arrays,
            self.writes_arrays,
            self.allocates,
            self.prints,
        );
        self.reads_globals
            .extend(other.reads_globals.iter().copied());
        self.writes_globals
            .extend(other.writes_globals.iter().copied());
        self.reads_fields.extend(other.reads_fields.iter().copied());
        self.writes_fields
            .extend(other.writes_fields.iter().copied());
        self.reads_arrays |= other.reads_arrays;
        self.writes_arrays |= other.writes_arrays;
        self.allocates |= other.allocates;
        self.prints |= other.prints;
        before
            != (
                self.reads_globals.len(),
                self.writes_globals.len(),
                self.reads_fields.len(),
                self.writes_fields.len(),
                self.reads_arrays,
                self.writes_arrays,
                self.allocates,
                self.prints,
            )
    }

    /// True if the set records no effect at all.
    pub fn is_empty(&self) -> bool {
        self.reads().is_empty() && self.writes().is_empty() && !self.allocates && !self.prints
    }

    /// The locations read, in deterministic order.
    pub fn reads(&self) -> Vec<Loc> {
        let mut out: Vec<Loc> = self.reads_globals.iter().map(|&g| Loc::Global(g)).collect();
        out.extend(self.reads_fields.iter().map(|&f| Loc::Field(f)));
        if self.reads_arrays {
            out.push(Loc::Arrays);
        }
        out
    }

    /// The locations written, in deterministic order.
    pub fn writes(&self) -> Vec<Loc> {
        let mut out: Vec<Loc> = self
            .writes_globals
            .iter()
            .map(|&g| Loc::Global(g))
            .collect();
        out.extend(self.writes_fields.iter().map(|&f| Loc::Field(f)));
        if self.writes_arrays {
            out.push(Loc::Arrays);
        }
        out
    }

    /// True if `self` reads any location that `other` writes.
    pub fn reads_overlap_writes(&self, other: &EffectSet) -> bool {
        self.reads_globals
            .iter()
            .any(|g| other.writes_globals.contains(g))
            || self
                .reads_fields
                .iter()
                .any(|f| other.writes_fields.contains(f))
            || (self.reads_arrays && other.writes_arrays)
    }
}

/// One write to top-level storage, with its source position.
#[derive(Debug, Clone)]
pub struct WriteSite {
    /// What is written.
    pub target: Loc,
    /// Position of the assignment.
    pub span: Span,
}

/// One `(*UNCHECKED*)` region, with everything it suppresses.
#[derive(Debug, Clone)]
pub struct UncheckedSite {
    /// Position of the pragma.
    pub span: Span,
    /// Locations read syntactically inside the region.
    pub reads: EffectSet,
    /// Procedures called inside the region.
    pub calls: BTreeSet<ProcId>,
    /// Method names dispatched inside the region.
    pub dispatches: BTreeSet<String>,
}

/// Direct (intraprocedural) facts about one procedure.
#[derive(Debug, Clone, Default)]
pub struct ProcFacts {
    /// Checked reads/writes performed by the body itself.
    pub direct: EffectSet,
    /// Reads performed under `(*UNCHECKED*)` (union over all regions).
    pub unchecked_reads: EffectSet,
    /// Procedures called directly.
    pub calls: BTreeSet<ProcId>,
    /// Method names dispatched directly.
    pub dispatches: BTreeSet<String>,
    /// Procedures called at least once *outside* any `(*UNCHECKED*)`
    /// region. A callee appearing only inside regions always executes in a
    /// suppressed frame, so it never records dependencies — the
    /// recording-reachability analysis follows only these edges.
    pub checked_calls: BTreeSet<ProcId>,
    /// Method names dispatched at least once outside any `(*UNCHECKED*)`
    /// region (see [`ProcFacts::checked_calls`]).
    pub checked_dispatches: BTreeSet<String>,
    /// Write sites, for W01 diagnostics.
    pub write_sites: Vec<WriteSite>,
    /// `(*UNCHECKED*)` regions, for W02/W04 diagnostics.
    pub unchecked_sites: Vec<UncheckedSite>,
    /// Callees invoked with exactly this procedure's formals, in order —
    /// an edge of the identity-argument call graph used for W05 (such a
    /// chain re-requests the *same instance* and cannot terminate).
    pub identity_calls: BTreeSet<ProcId>,
    /// Method names dispatched with `Local(0)` as receiver and the
    /// remaining formals as arguments (identity dispatch, see above).
    pub identity_dispatches: BTreeSet<String>,
}

/// The result of effect inference over a whole program.
#[derive(Debug, Clone)]
pub struct EffectTable {
    /// Per-procedure direct facts.
    pub facts: Vec<ProcFacts>,
    /// Transitive effects (direct ∪ callees, dispatch resolved by name).
    pub transitive: Vec<EffectSet>,
    /// Transitive effects following only direct calls — the part of a
    /// cached procedure's read set that the static `R(p)` enumeration can
    /// name without resolving dynamic dispatch.
    pub transitive_static: Vec<EffectSet>,
    /// Procedures proven to be pure combinators.
    pub pure_procs: Vec<bool>,
    /// Procedures reachable from an incremental root (Section 6.1).
    pub reachable: Vec<bool>,
    /// Procedures that can execute in a *recording* frame: reachable from
    /// an incremental root following only calls/dispatches that occur
    /// outside `(*UNCHECKED*)` regions. A procedure reachable only through
    /// region calls always runs suppressed, so its reads never create
    /// dependence nodes — the sharper check-elimination criterion.
    pub recording_reachable: Vec<bool>,
    /// Method name → implementing procedures (across all types).
    pub impls_by_name: BTreeMap<String, BTreeSet<ProcId>>,
    /// Per-procedure fixpoint visits spent by the two effect closures —
    /// observable so tests can assert the SCC schedule beats round-robin.
    pub close_passes: u64,
}

/// Runs effect inference on a resolved program.
pub fn infer(program: &Program) -> EffectTable {
    let n = program.procs.len();
    let facts: Vec<ProcFacts> = (0..n).map(|p| collect(program, p)).collect();

    let mut impls_by_name: BTreeMap<String, BTreeSet<ProcId>> = BTreeMap::new();
    for t in &program.types {
        for m in &t.methods {
            impls_by_name
                .entry(m.name.clone())
                .or_default()
                .insert(m.impl_proc);
        }
    }

    let succs_of = |f: &ProcFacts, with_dispatch: bool| -> BTreeSet<ProcId> {
        let mut s = f.calls.clone();
        if with_dispatch {
            for name in &f.dispatches {
                if let Some(impls) = impls_by_name.get(name) {
                    s.extend(impls.iter().copied());
                }
            }
        }
        s
    };
    let succs: Vec<BTreeSet<ProcId>> = facts.iter().map(|f| succs_of(f, true)).collect();
    let static_succs: Vec<BTreeSet<ProcId>> = facts.iter().map(|f| succs_of(f, false)).collect();

    let (transitive, passes_full) = close(&facts, &succs);
    let (transitive_static, passes_static) = close(&facts, &static_succs);
    let close_passes = passes_full + passes_static;

    // Purity: greatest fixpoint — start from the local test and knock out
    // procedures whose callees (including dispatch targets) are impure.
    let mut pure_procs: Vec<bool> = facts
        .iter()
        .map(|f| f.direct.is_empty() && f.unchecked_reads.is_empty() && f.dispatches.is_empty())
        .collect();
    loop {
        let mut changed = false;
        for p in 0..n {
            if pure_procs[p] && succs[p].iter().any(|&q| !pure_procs[q]) {
                pure_procs[p] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Section 6.1 reachability: BFS from incremental roots.
    let mut reachable = vec![false; n];
    let mut queue: VecDeque<ProcId> = (0..n)
        .filter(|&p| program.procs[p].incremental.is_some())
        .collect();
    for &p in &queue {
        reachable[p] = true;
    }
    while let Some(p) = queue.pop_front() {
        for &q in &succs[p] {
            if !reachable[q] {
                reachable[q] = true;
                queue.push_back(q);
            }
        }
    }

    // Recording reachability: the same BFS, but following only call edges
    // that occur outside `(*UNCHECKED*)` regions. A region call runs its
    // whole callee tree in a suppressed frame, so those procedures can
    // never record a dependence — unless some checked path also reaches
    // them.
    let checked_succs_of = |f: &ProcFacts| -> BTreeSet<ProcId> {
        let mut s = f.checked_calls.clone();
        for name in &f.checked_dispatches {
            if let Some(impls) = impls_by_name.get(name) {
                s.extend(impls.iter().copied());
            }
        }
        s
    };
    let mut recording_reachable = vec![false; n];
    let mut queue: VecDeque<ProcId> = (0..n)
        .filter(|&p| program.procs[p].incremental.is_some())
        .collect();
    for &p in &queue {
        recording_reachable[p] = true;
    }
    while let Some(p) = queue.pop_front() {
        for q in checked_succs_of(&facts[p]) {
            if !recording_reachable[q] {
                recording_reachable[q] = true;
                queue.push_back(q);
            }
        }
    }

    EffectTable {
        facts,
        transitive,
        transitive_static,
        pure_procs,
        reachable,
        recording_reachable,
        impls_by_name,
        close_passes,
    }
}

/// Least-fixpoint union of direct effects along `succs` edges, scheduled
/// callee-first: the call graph is condensed into strongly-connected
/// components ([`alphonse_graph::scc`]) and components are processed in
/// reverse-topological order, so every callee outside the current
/// component is final before its callers absorb it. Acyclic components
/// need exactly one visit; cyclic ones iterate locally to their own
/// fixpoint. Returns the effect sets plus the number of per-procedure
/// visits spent (the comparison metric against the old round-robin sweep).
fn close(facts: &[ProcFacts], succs: &[BTreeSet<ProcId>]) -> (Vec<EffectSet>, u64) {
    let mut out: Vec<EffectSet> = facts.iter().map(|f| f.direct.clone()).collect();
    let cond = alphonse_graph::scc::condense(facts.len(), |v, f| {
        succs[v].iter().for_each(|&w| f(w));
    });
    let mut visits = 0u64;
    // Component ids are topologically sorted callers-first (an edge means
    // "calls"), so reverse order visits callees before callers.
    for (c, members) in cond.components.iter().enumerate().rev() {
        if !cond.is_cyclic(c) {
            let p = members[0];
            visits += 1;
            let merged: Vec<EffectSet> = succs[p].iter().map(|&q| out[q].clone()).collect();
            for m in &merged {
                out[p].absorb(m);
            }
            continue;
        }
        loop {
            let mut changed = false;
            for &p in members {
                visits += 1;
                let merged: Vec<EffectSet> = succs[p].iter().map(|&q| out[q].clone()).collect();
                for m in &merged {
                    changed |= out[p].absorb(m);
                }
            }
            if !changed {
                break;
            }
        }
    }
    (out, visits)
}

/// The pre-SCC fixpoint: whole-program round-robin sweeps until a full
/// pass changes nothing. Kept as the test oracle for the SCC schedule —
/// same results, strictly more visits on deep call chains.
#[cfg(test)]
fn close_round_robin(facts: &[ProcFacts], succs: &[BTreeSet<ProcId>]) -> (Vec<EffectSet>, u64) {
    let mut out: Vec<EffectSet> = facts.iter().map(|f| f.direct.clone()).collect();
    let mut visits = 0u64;
    loop {
        let mut changed = false;
        for p in 0..facts.len() {
            visits += 1;
            let merged: Vec<EffectSet> = succs[p].iter().map(|&q| out[q].clone()).collect();
            for m in &merged {
                changed |= out[p].absorb(m);
            }
        }
        if !changed {
            break;
        }
    }
    (out, visits)
}

impl EffectTable {
    /// All implementing procedures of dispatched method names in `names`.
    pub fn dispatch_targets<'a>(
        &self,
        names: impl IntoIterator<Item = &'a String>,
    ) -> BTreeSet<ProcId> {
        let mut out = BTreeSet::new();
        for name in names {
            if let Some(impls) = self.impls_by_name.get(name) {
                out.extend(impls.iter().copied());
            }
        }
        out
    }

    /// The reads an `(*UNCHECKED*)` region actually suppresses at runtime:
    /// its syntactic reads plus the reads of *non-incremental* procedures
    /// it (transitively) calls — those run in the suppressed frame.
    /// Incremental callees open their own frames and record normally.
    ///
    /// Also returns whether the region suppresses at least one dependence
    /// on an incremental instance (calling a cached/maintained procedure
    /// under the pragma unhooks the caller from that instance).
    pub fn suppressed_by(&self, program: &Program, site: &UncheckedSite) -> (EffectSet, bool) {
        let mut reads = site.reads.clone();
        let mut hits_incremental = false;
        let mut queue: VecDeque<ProcId> = VecDeque::new();
        let mut seen: BTreeSet<ProcId> = BTreeSet::new();
        let enqueue = |p: ProcId, queue: &mut VecDeque<ProcId>, seen: &mut BTreeSet<ProcId>| {
            if seen.insert(p) {
                queue.push_back(p);
            }
        };
        for &p in &site.calls {
            enqueue(p, &mut queue, &mut seen);
        }
        for p in self.dispatch_targets(site.dispatches.iter()) {
            enqueue(p, &mut queue, &mut seen);
        }
        while let Some(p) = queue.pop_front() {
            if program.procs[p].incremental.is_some() {
                hits_incremental = true;
                continue; // tracks its own dependencies
            }
            let f = &self.facts[p];
            reads.absorb(&f.direct);
            reads.absorb(&f.unchecked_reads);
            for &q in &f.calls {
                enqueue(q, &mut queue, &mut seen);
            }
            for q in self.dispatch_targets(f.dispatches.iter()) {
                enqueue(q, &mut queue, &mut seen);
            }
        }
        // Only reads matter for suppression; drop write/alloc noise that
        // `absorb` may have copied in from callees.
        reads.writes_globals.clear();
        reads.writes_fields.clear();
        reads.writes_arrays = false;
        reads.allocates = false;
        reads.prints = false;
        (reads, hits_incremental)
    }
}

// ----------------------------------------------------------------------
// Direct-fact collection
// ----------------------------------------------------------------------

struct Collector<'a> {
    program: &'a Program,
    /// Arity of the procedure being collected (for identity-call edges).
    arity: usize,
    facts: ProcFacts,
    /// Index into `facts.unchecked_sites` while inside a region.
    region: Option<usize>,
}

fn collect(program: &Program, pid: ProcId) -> ProcFacts {
    let info = &program.procs[pid];
    let mut c = Collector {
        program,
        arity: info.params.len(),
        facts: ProcFacts::default(),
        region: None,
    };
    for (_, _, init) in &info.local_inits {
        if let Some(e) = init {
            c.expr(e);
        }
    }
    for s in &info.body {
        c.stmt(s);
    }
    c.facts
}

impl Collector<'_> {
    fn read(&mut self, loc: Loc) {
        let set = match self.region {
            Some(r) => {
                let site = &mut self.facts.unchecked_sites[r];
                match loc {
                    Loc::Global(g) => {
                        site.reads.reads_globals.insert(g);
                    }
                    Loc::Field(f) => {
                        site.reads.reads_fields.insert(f);
                    }
                    Loc::Arrays => site.reads.reads_arrays = true,
                }
                &mut self.facts.unchecked_reads
            }
            None => &mut self.facts.direct,
        };
        match loc {
            Loc::Global(g) => {
                set.reads_globals.insert(g);
            }
            Loc::Field(f) => {
                set.reads_fields.insert(f);
            }
            Loc::Arrays => set.reads_arrays = true,
        }
    }

    fn write(&mut self, loc: Loc, span: Span) {
        match loc {
            Loc::Global(g) => {
                self.facts.direct.writes_globals.insert(g);
            }
            Loc::Field(f) => {
                self.facts.direct.writes_fields.insert(f);
            }
            Loc::Arrays => self.facts.direct.writes_arrays = true,
        }
        self.facts.write_sites.push(WriteSite { target: loc, span });
    }

    /// True if `args` are exactly the formals `first..first+len` in order
    /// and cover the whole frame of formals.
    fn identity_args(&self, first: usize, args: &[HExpr]) -> bool {
        first + args.len() == self.arity
            && args
                .iter()
                .enumerate()
                .all(|(i, a)| matches!(a, HExpr::Local(s) if *s == first + i))
    }

    fn stmt(&mut self, s: &HStmt) {
        match s {
            HStmt::AssignLocal { value, .. } => self.expr(value),
            HStmt::AssignGlobal { span, index, value } => {
                self.expr(value);
                self.write(Loc::Global(*index), *span);
            }
            HStmt::AssignIndex {
                span,
                arr,
                index,
                value,
            } => {
                self.expr(arr);
                self.expr(index);
                self.expr(value);
                self.write(Loc::Arrays, *span);
            }
            HStmt::AssignField {
                span,
                obj,
                field,
                value,
            } => {
                self.expr(obj);
                self.expr(value);
                self.write(Loc::Field(*field), *span);
            }
            HStmt::If { arms, else_body } => {
                for (c, body) in arms {
                    self.expr(c);
                    for s in body {
                        self.stmt(s);
                    }
                }
                for s in else_body {
                    self.stmt(s);
                }
            }
            HStmt::While { cond, body } => {
                self.expr(cond);
                for s in body {
                    self.stmt(s);
                }
            }
            HStmt::For {
                from, to, by, body, ..
            } => {
                self.expr(from);
                self.expr(to);
                if let Some(b) = by {
                    self.expr(b);
                }
                for s in body {
                    self.stmt(s);
                }
            }
            HStmt::Return(Some(e)) => self.expr(e),
            HStmt::Return(None) => {}
            HStmt::Expr(e) => self.expr(e),
        }
    }

    fn expr(&mut self, e: &HExpr) {
        match e {
            HExpr::Int(_) | HExpr::Text(_) | HExpr::Bool(_) | HExpr::Nil | HExpr::Local(_) => {}
            HExpr::Global(g) => self.read(Loc::Global(*g)),
            HExpr::Field { obj, field } => {
                self.expr(obj);
                self.read(Loc::Field(*field));
            }
            HExpr::Index { arr, index } => {
                self.expr(arr);
                self.expr(index);
                self.read(Loc::Arrays);
            }
            HExpr::CallProc { proc, args } => {
                self.facts.calls.insert(*proc);
                match self.region {
                    Some(r) => {
                        self.facts.unchecked_sites[r].calls.insert(*proc);
                    }
                    None => {
                        self.facts.checked_calls.insert(*proc);
                    }
                }
                if self.identity_args(0, args)
                    && self.program.procs[*proc].params.len() == args.len()
                {
                    self.facts.identity_calls.insert(*proc);
                }
                for a in args {
                    self.expr(a);
                }
            }
            HExpr::CallMethod {
                name, obj, args, ..
            } => {
                self.facts.dispatches.insert(name.to_string());
                match self.region {
                    Some(r) => {
                        self.facts.unchecked_sites[r]
                            .dispatches
                            .insert(name.to_string());
                    }
                    None => {
                        self.facts.checked_dispatches.insert(name.to_string());
                    }
                }
                if matches!(**obj, HExpr::Local(0)) && self.identity_args(1, args) {
                    self.facts.identity_dispatches.insert(name.to_string());
                }
                self.expr(obj);
                for a in args {
                    self.expr(a);
                }
            }
            HExpr::CallBuiltin { builtin, args } => {
                if *builtin == Builtin::Print {
                    self.facts.direct.prints = true;
                }
                for a in args {
                    self.expr(a);
                }
            }
            HExpr::New(_) => self.facts.direct.allocates = true,
            HExpr::NewArray { size, .. } => {
                self.facts.direct.allocates = true;
                self.expr(size);
            }
            HExpr::Unary { expr, .. } => self.expr(expr),
            HExpr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            HExpr::Unchecked { expr, span } => {
                let outer = self.region;
                if outer.is_none() {
                    self.facts.unchecked_sites.push(UncheckedSite {
                        span: *span,
                        reads: EffectSet::default(),
                        calls: BTreeSet::new(),
                        dispatches: BTreeSet::new(),
                    });
                    self.region = Some(self.facts.unchecked_sites.len() - 1);
                }
                self.expr(expr);
                self.region = outer;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;

    fn table(src: &str) -> (Program, EffectTable) {
        let program = resolve(&parse(src).unwrap()).unwrap();
        let t = infer(&program);
        (program, t)
    }

    #[test]
    fn direct_reads_and_writes_are_collected() {
        let (p, t) = table(
            "VAR a, b : INTEGER;
             PROCEDURE F(x : INTEGER) : INTEGER =
             BEGIN a := b + x; RETURN a; END F;",
        );
        let f = p.proc_by_name["F"];
        assert_eq!(t.facts[f].direct.writes_globals, BTreeSet::from([0]));
        assert_eq!(t.facts[f].direct.reads_globals, BTreeSet::from([0, 1]));
        assert_eq!(t.facts[f].write_sites.len(), 1);
        assert_eq!(t.facts[f].write_sites[0].target, Loc::Global(0));
    }

    #[test]
    fn transitive_effects_flow_through_calls() {
        let (p, t) = table(
            "VAR g : INTEGER;
             PROCEDURE Leaf() : INTEGER = BEGIN RETURN g; END Leaf;
             PROCEDURE Mid() : INTEGER = BEGIN RETURN Leaf(); END Mid;
             PROCEDURE Top() : INTEGER = BEGIN RETURN Mid(); END Top;",
        );
        let top = p.proc_by_name["Top"];
        assert!(t.facts[top].direct.reads_globals.is_empty());
        assert_eq!(t.transitive[top].reads_globals, BTreeSet::from([0]));
    }

    #[test]
    fn dispatch_unions_all_implementations() {
        let (p, t) = table(
            "VAR g : INTEGER;
             TYPE A = OBJECT METHODS m() : INTEGER := MA; END;
             TYPE B = A OBJECT OVERRIDES m := MB; END;
             PROCEDURE MA(a : A) : INTEGER = BEGIN RETURN 0; END MA;
             PROCEDURE MB(b : B) : INTEGER = BEGIN RETURN g; END MB;
             PROCEDURE Use(a : A) : INTEGER = BEGIN RETURN a.m(); END Use;",
        );
        let use_ = p.proc_by_name["Use"];
        // Use's transitive reads include MB's global read even though the
        // static receiver type is A.
        assert_eq!(t.transitive[use_].reads_globals, BTreeSet::from([0]));
        // ... but the dispatch-free closure does not see it.
        assert!(t.transitive_static[use_].reads_globals.is_empty());
    }

    #[test]
    fn purity_is_transitive_and_tolerates_recursion() {
        let (p, t) = table(
            "VAR g : INTEGER;
             (*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
             BEGIN
                IF n < 2 THEN RETURN n; END;
                RETURN Fib(n - 1) + Fib(n - 2);
             END Fib;
             PROCEDURE Tainted(n : INTEGER) : INTEGER = BEGIN RETURN n + g; END Tainted;
             PROCEDURE Wrapper(n : INTEGER) : INTEGER = BEGIN RETURN Tainted(n); END Wrapper;",
        );
        assert!(t.pure_procs[p.proc_by_name["Fib"]]);
        assert!(!t.pure_procs[p.proc_by_name["Tainted"]]);
        assert!(!t.pure_procs[p.proc_by_name["Wrapper"]]);
    }

    #[test]
    fn allocation_print_and_unchecked_reads_break_purity() {
        let (p, t) = table(
            "VAR g : INTEGER;
             TYPE T = OBJECT END;
             PROCEDURE Alloc() : T = BEGIN RETURN NEW(T); END Alloc;
             PROCEDURE Noisy(n : INTEGER) = BEGIN Print(n); END Noisy;
             PROCEDURE Peek() : INTEGER = BEGIN RETURN (*UNCHECKED*) g; END Peek;",
        );
        assert!(!t.pure_procs[p.proc_by_name["Alloc"]]);
        assert!(!t.pure_procs[p.proc_by_name["Noisy"]]);
        assert!(!t.pure_procs[p.proc_by_name["Peek"]]);
        // The unchecked read is not a checked read…
        let peek = p.proc_by_name["Peek"];
        assert!(t.facts[peek].direct.reads_globals.is_empty());
        // …but is remembered as a suppressed one.
        assert_eq!(
            t.facts[peek].unchecked_reads.reads_globals,
            BTreeSet::from([0])
        );
        assert_eq!(t.facts[peek].unchecked_sites.len(), 1);
    }

    #[test]
    fn identity_call_edges_require_exact_formals() {
        let (p, t) = table(
            "PROCEDURE A(x, y : INTEGER) : INTEGER = BEGIN RETURN B(x, y); END A;
             PROCEDURE B(x, y : INTEGER) : INTEGER = BEGIN RETURN C(x - 1, y); END B;
             PROCEDURE C(x, y : INTEGER) : INTEGER = BEGIN RETURN x + y; END C;",
        );
        let a = p.proc_by_name["A"];
        let b = p.proc_by_name["B"];
        assert_eq!(
            t.facts[a].identity_calls,
            BTreeSet::from([p.proc_by_name["B"]])
        );
        assert!(t.facts[b].identity_calls.is_empty(), "x - 1 is not x");
    }

    #[test]
    fn suppressed_reads_follow_plain_calls_but_stop_at_incremental() {
        let (p, t) = table(
            "VAR seen, hidden : INTEGER;
             PROCEDURE Plain() : INTEGER = BEGIN RETURN hidden; END Plain;
             (*CACHED*) PROCEDURE Cached() : INTEGER = BEGIN RETURN seen; END Cached;
             PROCEDURE Use() : INTEGER =
             BEGIN RETURN (*UNCHECKED*) (Plain() + Cached()); END Use;",
        );
        let use_ = p.proc_by_name["Use"];
        let site = &t.facts[use_].unchecked_sites[0];
        let (reads, hits_incremental) = t.suppressed_by(&p, site);
        // Plain's read of `hidden` runs in the suppressed frame…
        assert_eq!(
            reads.reads_globals,
            BTreeSet::from([p.global_by_name["hidden"]])
        );
        // …while Cached records its own dependence on `seen`, and the
        // region suppresses the dependence on Cached's instance.
        assert!(hits_incremental);
    }

    #[test]
    fn scc_close_matches_round_robin_with_fewer_visits() {
        // Callers are declared *before* their callees, so the round-robin
        // sweep needs one whole pass per chain link; the SCC schedule
        // visits each procedure exactly once.
        let src = "VAR g : INTEGER;
             PROCEDURE Top() : INTEGER = BEGIN RETURN Mid(); END Top;
             PROCEDURE Mid() : INTEGER = BEGIN RETURN Low(); END Mid;
             PROCEDURE Low() : INTEGER = BEGIN RETURN Leaf(); END Low;
             PROCEDURE Leaf() : INTEGER = BEGIN RETURN g; END Leaf;";
        let program = resolve(&parse(src).unwrap()).unwrap();
        let n = program.procs.len();
        let facts: Vec<ProcFacts> = (0..n).map(|p| collect(&program, p)).collect();
        let succs: Vec<BTreeSet<ProcId>> = facts.iter().map(|f| f.calls.clone()).collect();
        let (scc_out, scc_visits) = close(&facts, &succs);
        let (rr_out, rr_visits) = close_round_robin(&facts, &succs);
        assert_eq!(scc_out, rr_out, "schedules must agree on the fixpoint");
        assert_eq!(scc_visits, n as u64, "acyclic graph: one visit per proc");
        assert!(
            rr_visits > scc_visits,
            "round-robin ({rr_visits} visits) should lose to SCC ({scc_visits})"
        );
        // Recursion still converges and still agrees.
        let (p2, t2) = table(
            "VAR g : INTEGER;
             PROCEDURE Even(n : INTEGER) : BOOLEAN =
             BEGIN IF n = 0 THEN RETURN TRUE; END; RETURN Odd(n - 1); END Even;
             PROCEDURE Odd(n : INTEGER) : BOOLEAN =
             BEGIN IF n = 0 THEN RETURN FALSE; END; RETURN Even(n - 1) AND (g > 0); END Odd;",
        );
        let succs2: Vec<BTreeSet<ProcId>> = t2.facts.iter().map(|f| f.calls.clone()).collect();
        let (rr2, _) = close_round_robin(&t2.facts, &succs2);
        assert_eq!(t2.transitive, rr2);
        assert_eq!(
            t2.transitive[p2.proc_by_name["Even"]].reads_globals,
            BTreeSet::from([0])
        );
    }

    #[test]
    fn recording_reachability_stops_at_region_only_calls() {
        let (p, t) = table(
            "VAR g, h : INTEGER;
             (*CACHED*) PROCEDURE Root() : INTEGER =
             BEGIN RETURN Checked() + (*UNCHECKED*) Hidden(); END Root;
             PROCEDURE Checked() : INTEGER = BEGIN RETURN g; END Checked;
             PROCEDURE Hidden() : INTEGER = BEGIN RETURN h; END Hidden;",
        );
        // Both helpers are reachable (Section 6.1)…
        assert!(t.reachable[p.proc_by_name["Checked"]]);
        assert!(t.reachable[p.proc_by_name["Hidden"]]);
        // …but only the checked call can ever run in a recording frame.
        assert!(t.recording_reachable[p.proc_by_name["Root"]]);
        assert!(t.recording_reachable[p.proc_by_name["Checked"]]);
        assert!(!t.recording_reachable[p.proc_by_name["Hidden"]]);
    }

    #[test]
    fn reachability_starts_at_incremental_roots() {
        let (p, t) = table(
            "VAR g : INTEGER;
             (*CACHED*) PROCEDURE Root() : INTEGER = BEGIN RETURN Helper(); END Root;
             PROCEDURE Helper() : INTEGER = BEGIN RETURN g; END Helper;
             PROCEDURE Orphan() = BEGIN g := 1; END Orphan;",
        );
        assert!(t.reachable[p.proc_by_name["Root"]]);
        assert!(t.reachable[p.proc_by_name["Helper"]]);
        assert!(!t.reachable[p.proc_by_name["Orphan"]]);
    }
}
