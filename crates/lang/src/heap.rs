//! Object heap with lazily tracked storage.
//!
//! Every field of every object is an *abstract location* (paper
//! Section 4.3). Following Algorithm 3, a location only gets a dependency
//! graph node (`nodeptr`) the first time it is read **while an Alphonse
//! procedure is executing**; until then it is plain storage with zero
//! tracking overhead — this is what makes embedded use cheap (Section 6.1).
//! Writes never create nodes (Algorithm 4 checks `nodeptr(l) # NIL`).

use crate::hir::{Ty, TypeId};
use crate::value::{ArrId, ObjId, Val};
use alphonse::{Batch, Runtime, Var};

/// One storage location: plain until promoted to a tracked variable.
#[derive(Debug, Clone)]
pub(crate) enum Slot {
    /// Untracked storage (no dependency-graph node yet).
    Plain(Val),
    /// Tracked storage; the value lives in the Alphonse runtime.
    Tracked(Var<Val>),
}

impl Slot {
    pub(crate) fn new(v: Val) -> Slot {
        Slot::Plain(v)
    }

    /// Reads the slot. In Alphonse mode (`rt` present), a read inside an
    /// incremental procedure promotes the slot and records the dependence.
    ///
    /// `label` names the abstract location (`g:<name>` / `f:<offset>` /
    /// `arr`, matching [`crate::depgraph::loc_label`]); it is only computed
    /// on the promoting read, and only when a trace sink is attached, so
    /// the hot untraced path never allocates.
    pub(crate) fn read(&mut self, rt: Option<&Runtime>, label: impl FnOnce() -> String) -> Val {
        match self {
            Slot::Tracked(var) => var.get(rt.expect("tracked slot implies Alphonse mode")),
            Slot::Plain(v) => {
                if let Some(rt) = rt {
                    if rt.in_tracked_context() {
                        // Promote: node creation and the promoting read's
                        // dependence edge happen as one runtime operation.
                        let value = std::mem::replace(v, Val::Nil);
                        let var = rt.var_accessed(value.clone());
                        if rt.tracing() {
                            rt.set_label(var.node(), &label());
                        }
                        *self = Slot::Tracked(var);
                        return value;
                    }
                }
                v.clone()
            }
        }
    }

    /// Writes the slot (the `modify` operation when tracked).
    pub(crate) fn write(&mut self, rt: Option<&Runtime>, v: Val) {
        match self {
            Slot::Tracked(var) => var.set(rt.expect("tracked slot implies Alphonse mode"), v),
            Slot::Plain(old) => *old = v,
        }
    }

    /// Writes the slot through a write transaction. Tracked slots buffer the
    /// write in `tx` (committed with the batch's single dirty frontier);
    /// plain slots have no dependency-graph node — per Algorithm 4 writes
    /// never create one — so they are stored immediately.
    pub(crate) fn write_in(&mut self, tx: &mut Batch<'_>, v: Val) {
        match self {
            Slot::Tracked(var) => var.set_in(tx, v),
            Slot::Plain(old) => *old = v,
        }
    }

    /// Returns `true` once the slot has a dependency-graph node.
    pub(crate) fn is_tracked(&self) -> bool {
        matches!(self, Slot::Tracked(_))
    }
}

/// Default value of a field of the given type.
pub(crate) fn default_val(ty: Ty) -> Val {
    match ty {
        Ty::Integer => Val::Int(0),
        Ty::Boolean => Val::Bool(false),
        Ty::Text => Val::text(""),
        Ty::Object(_) | Ty::Array(_) => Val::Nil,
    }
}

#[derive(Debug)]
struct ObjData {
    ty: TypeId,
    fields: Vec<Slot>,
}

/// The interpreter's object heap.
#[derive(Debug, Default)]
pub(crate) struct Heap {
    objects: Vec<ObjData>,
    arrays: Vec<Vec<Slot>>,
}

impl Heap {
    pub(crate) fn new() -> Heap {
        Heap::default()
    }

    /// Allocates an object of `ty` with default-initialized fields.
    pub(crate) fn alloc(&mut self, ty: TypeId, field_types: &[Ty]) -> ObjId {
        let id = u32::try_from(self.objects.len()).expect("too many objects");
        self.objects.push(ObjData {
            ty,
            fields: field_types
                .iter()
                .map(|&t| Slot::new(default_val(t)))
                .collect(),
        });
        ObjId(id)
    }

    /// Dynamic type of an object.
    pub(crate) fn type_of(&self, o: ObjId) -> TypeId {
        self.objects[o.0 as usize].ty
    }

    /// Number of objects allocated.
    pub(crate) fn len(&self) -> usize {
        self.objects.len()
    }

    /// Number of field slots that have been promoted to tracked storage.
    pub(crate) fn tracked_slots(&self) -> usize {
        self.objects
            .iter()
            .flat_map(|o| &o.fields)
            .filter(|s| s.is_tracked())
            .count()
    }

    pub(crate) fn read_field(&mut self, rt: Option<&Runtime>, o: ObjId, field: usize) -> Val {
        self.objects[o.0 as usize].fields[field].read(rt, || format!("f:{field}"))
    }

    pub(crate) fn write_field(&mut self, rt: Option<&Runtime>, o: ObjId, field: usize, v: Val) {
        self.objects[o.0 as usize].fields[field].write(rt, v);
    }

    /// Batched field write: tracked slots buffer into `tx`, plain slots
    /// store immediately (see [`Slot::write_in`]).
    pub(crate) fn write_field_in(&mut self, tx: &mut Batch<'_>, o: ObjId, field: usize, v: Val) {
        self.objects[o.0 as usize].fields[field].write_in(tx, v);
    }

    /// Allocates an array of `len` default-initialized elements of `elem`.
    pub(crate) fn alloc_array(&mut self, elem: Ty, len: usize) -> ArrId {
        let id = u32::try_from(self.arrays.len()).expect("too many arrays");
        self.arrays
            .push((0..len).map(|_| Slot::new(default_val(elem))).collect());
        ArrId(id)
    }

    /// Length of an array.
    pub(crate) fn array_len(&self, a: ArrId) -> usize {
        self.arrays[a.0 as usize].len()
    }

    /// Bounds-checked element read. Returns `None` when out of bounds.
    pub(crate) fn read_element(&mut self, rt: Option<&Runtime>, a: ArrId, i: i64) -> Option<Val> {
        let slots = &mut self.arrays[a.0 as usize];
        let idx = usize::try_from(i).ok().filter(|&i| i < slots.len())?;
        Some(slots[idx].read(rt, || "arr".to_string()))
    }

    /// Bounds-checked element write. Returns `false` when out of bounds.
    pub(crate) fn write_element(&mut self, rt: Option<&Runtime>, a: ArrId, i: i64, v: Val) -> bool {
        let slots = &mut self.arrays[a.0 as usize];
        match usize::try_from(i).ok().filter(|&i| i < slots.len()) {
            Some(idx) => {
                slots[idx].write(rt, v);
                true
            }
            None => false,
        }
    }

    /// Batched bounds-checked element write. Returns `false` when out of
    /// bounds.
    pub(crate) fn write_element_in(
        &mut self,
        tx: &mut Batch<'_>,
        a: ArrId,
        i: i64,
        v: Val,
    ) -> bool {
        let slots = &mut self.arrays[a.0 as usize];
        match usize::try_from(i).ok().filter(|&i| i < slots.len()) {
            Some(idx) => {
                slots[idx].write_in(tx, v);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_slots_read_their_writes() {
        let mut heap = Heap::new();
        let o = heap.alloc(0, &[Ty::Integer, Ty::Text]);
        assert_eq!(heap.read_field(None, o, 0), Val::Int(0));
        assert_eq!(heap.read_field(None, o, 1), Val::text(""));
        heap.write_field(None, o, 0, Val::Int(7));
        assert_eq!(heap.read_field(None, o, 0), Val::Int(7));
        assert_eq!(heap.tracked_slots(), 0);
    }

    #[test]
    fn reads_outside_procedures_do_not_promote() {
        let rt = Runtime::new();
        let mut heap = Heap::new();
        let o = heap.alloc(0, &[Ty::Integer]);
        let _ = heap.read_field(Some(&rt), o, 0);
        assert_eq!(heap.tracked_slots(), 0, "no promotion outside call stack");
        assert_eq!(rt.node_count(), 0);
    }

    #[test]
    fn batched_writes_hit_tracked_and_plain_slots() {
        let rt = Runtime::new();
        let mut heap = Heap::new();
        let o = heap.alloc(0, &[Ty::Integer, Ty::Integer]);
        let a = heap.alloc_array(Ty::Integer, 4);
        // Promote field 0 by hand (promotion normally happens on a tracked
        // read inside an incremental procedure); field 1 stays plain.
        heap.objects[o.0 as usize].fields[0] = Slot::Tracked(rt.var(Val::Int(0)));
        rt.batch(|tx| {
            heap.write_field_in(tx, o, 0, Val::Int(7)); // tracked: buffered
            heap.write_field_in(tx, o, 1, Val::Int(8)); // plain: immediate
            assert!(heap.write_element_in(tx, a, 2, Val::Int(9)));
            assert!(!heap.write_element_in(tx, a, 99, Val::Int(0)));
        });
        assert_eq!(heap.read_field(None, o, 1), Val::Int(8));
        assert_eq!(heap.read_element(None, a, 2), Some(Val::Int(9)));
        assert_eq!(
            heap.read_field(Some(&rt), o, 0),
            Val::Int(7),
            "tracked write committed at batch end"
        );
        assert_eq!(rt.stats().batches, 1);
    }

    #[test]
    fn default_values_match_types() {
        assert_eq!(default_val(Ty::Integer), Val::Int(0));
        assert_eq!(default_val(Ty::Boolean), Val::Bool(false));
        assert_eq!(default_val(Ty::Text), Val::text(""));
        assert_eq!(default_val(Ty::Object(3)), Val::Nil);
    }

    #[test]
    fn type_of_is_recorded() {
        let mut heap = Heap::new();
        let a = heap.alloc(2, &[]);
        let b = heap.alloc(5, &[]);
        assert_eq!(heap.type_of(a), 2);
        assert_eq!(heap.type_of(b), 5);
        assert_eq!(heap.len(), 2);
    }
}
