//! Lexer for Alphonse-L.
//!
//! Comments are Modula-3 style `(* … *)` and nest. Comments whose first
//! word is an Alphonse pragma name (`MAINTAINED`, `CACHED`, `UNCHECKED`)
//! are *not* discarded: they become [`Token::Pragma`] tokens, mirroring how
//! the paper smuggles Alphonse annotations past a conventional compiler
//! (Section 3: "all L programs are valid Alphonse-L programs").

use crate::error::{LangError, Result};
use crate::token::{Pragma, PragmaStrategy, Span, Spanned, Token};

/// Tokenizes `source` into a vector of spanned tokens.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on unterminated comments or strings, malformed
/// pragmas, integer overflow, or unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Spanned>,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, token: Token, span: Span) {
        self.out.push(Spanned { token, span });
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        while let Some(c) = self.peek() {
            let span = self.span();
            let line = span.line;
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '(' if self.peek2() == Some('*') => {
                    self.comment_or_pragma()?;
                }
                '(' => {
                    self.bump();
                    self.push(Token::LParen, span);
                }
                ')' => {
                    self.bump();
                    self.push(Token::RParen, span);
                }
                ';' => {
                    self.bump();
                    self.push(Token::Semi, span);
                }
                ',' => {
                    self.bump();
                    self.push(Token::Comma, span);
                }
                '.' => {
                    self.bump();
                    self.push(Token::Dot, span);
                }
                '[' => {
                    self.bump();
                    self.push(Token::LBracket, span);
                }
                ']' => {
                    self.bump();
                    self.push(Token::RBracket, span);
                }
                '+' => {
                    self.bump();
                    self.push(Token::Plus, span);
                }
                '-' => {
                    self.bump();
                    self.push(Token::Minus, span);
                }
                '*' => {
                    self.bump();
                    self.push(Token::Star, span);
                }
                '&' => {
                    self.bump();
                    self.push(Token::Amp, span);
                }
                '=' => {
                    self.bump();
                    self.push(Token::Eq, span);
                }
                '#' => {
                    self.bump();
                    self.push(Token::Ne, span);
                }
                ':' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Token::Assign, span);
                    } else {
                        self.push(Token::Colon, span);
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Token::Le, span);
                    } else {
                        self.push(Token::Lt, span);
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Token::Ge, span);
                    } else {
                        self.push(Token::Gt, span);
                    }
                }
                '"' => self.text_literal()?,
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_ascii_alphabetic() || c == '_' => self.word(),
                other => {
                    return Err(LangError::lex(
                        line,
                        format!("unexpected character {other:?}"),
                    ))
                }
            }
        }
        Ok(self.out)
    }

    fn text_literal(&mut self) -> Result<()> {
        let span = self.span();
        let line = span.line;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => return Err(LangError::lex(line, "unterminated text literal")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    other => {
                        return Err(LangError::lex(
                            line,
                            format!("bad escape {other:?} in text literal"),
                        ))
                    }
                },
                Some(c) => s.push(c),
            }
        }
        self.push(Token::Text(s), span);
        Ok(())
    }

    fn number(&mut self) -> Result<()> {
        let span = self.span();
        let line = span.line;
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let value: i64 = s
            .parse()
            .map_err(|_| LangError::lex(line, format!("integer literal {s} overflows")))?;
        self.push(Token::Int(value), span);
        Ok(())
    }

    fn word(&mut self) {
        let span = self.span();
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let token = match s.as_str() {
            "TYPE" => Token::Type,
            "OBJECT" => Token::Object,
            "METHODS" => Token::Methods,
            "OVERRIDES" => Token::Overrides,
            "END" => Token::End,
            "PROCEDURE" => Token::Procedure,
            "BEGIN" => Token::Begin,
            "VAR" => Token::Var,
            "IF" => Token::If,
            "THEN" => Token::Then,
            "ELSIF" => Token::Elsif,
            "ELSE" => Token::Else,
            "WHILE" => Token::While,
            "DO" => Token::Do,
            "FOR" => Token::For,
            "TO" => Token::To,
            "BY" => Token::By,
            "RETURN" => Token::Return,
            "NEW" => Token::New,
            "NIL" => Token::Nil,
            "TRUE" => Token::True,
            "FALSE" => Token::False,
            "DIV" => Token::Div,
            "MOD" => Token::Mod,
            "AND" => Token::And,
            "OR" => Token::Or,
            "NOT" => Token::Not,
            "ARRAY" => Token::Array,
            "OF" => Token::Of,
            _ => Token::Ident(s),
        };
        self.push(token, span);
    }

    /// Consumes `(* … *)`; emits a pragma token if the body names one.
    fn comment_or_pragma(&mut self) -> Result<()> {
        let span = self.span();
        let line = span.line;
        self.bump(); // (
        self.bump(); // *
        let mut depth = 1u32;
        let mut body = String::new();
        loop {
            match self.peek() {
                None => return Err(LangError::lex(line, "unterminated comment")),
                Some('(') if self.peek2() == Some('*') => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    body.push_str("(*");
                }
                Some('*') if self.peek2() == Some(')') => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    body.push_str("*)");
                }
                Some(_) => body.push(self.bump().expect("peeked")),
            }
        }
        let words: Vec<&str> = body.split_whitespace().collect();
        let capacity = |n: &str| -> Result<Option<u32>> {
            n.parse::<u32>()
                .ok()
                .filter(|&c| c > 0)
                .map(Some)
                .ok_or_else(|| {
                    LangError::lex(line, format!("bad LRU capacity in pragma (*{body}*)"))
                })
        };
        let pragma = match words.as_slice() {
            ["MAINTAINED"] => Some(Pragma::Maintained(PragmaStrategy::Demand)),
            ["MAINTAINED", "DEMAND"] => Some(Pragma::Maintained(PragmaStrategy::Demand)),
            ["MAINTAINED", "EAGER"] => Some(Pragma::Maintained(PragmaStrategy::Eager)),
            ["CACHED"] => Some(Pragma::Cached(PragmaStrategy::Demand, None)),
            ["CACHED", "DEMAND"] => Some(Pragma::Cached(PragmaStrategy::Demand, None)),
            ["CACHED", "EAGER"] => Some(Pragma::Cached(PragmaStrategy::Eager, None)),
            ["CACHED", "LRU", n] => Some(Pragma::Cached(PragmaStrategy::Demand, capacity(n)?)),
            ["CACHED", "DEMAND", "LRU", n] => {
                Some(Pragma::Cached(PragmaStrategy::Demand, capacity(n)?))
            }
            ["CACHED", "EAGER", "LRU", n] => {
                Some(Pragma::Cached(PragmaStrategy::Eager, capacity(n)?))
            }
            ["UNCHECKED"] => Some(Pragma::Unchecked),
            [first, ..] if ["MAINTAINED", "CACHED", "UNCHECKED"].contains(first) => {
                return Err(LangError::lex(line, format!("malformed pragma (*{body}*)")));
            }
            _ => None, // ordinary comment
        };
        if let Some(p) = pragma {
            self.push(Token::Pragma(p), span);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("TYPE Tree = OBJECT END;"),
            vec![
                Token::Type,
                Token::Ident("Tree".into()),
                Token::Eq,
                Token::Object,
                Token::End,
                Token::Semi
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks(":= = # < <= > >= + - * & ."),
            vec![
                Token::Assign,
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Amp,
                Token::Dot
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks(r#"42 "hi\n" TRUE FALSE NIL"#),
            vec![
                Token::Int(42),
                Token::Text("hi\n".into()),
                Token::True,
                Token::False,
                Token::Nil
            ]
        );
    }

    #[test]
    fn plain_comments_are_skipped() {
        assert_eq!(
            toks("1 (* a comment (* nested *) done *) 2"),
            vec![Token::Int(1), Token::Int(2)]
        );
    }

    #[test]
    fn pragmas_are_tokens() {
        assert_eq!(
            toks("(*MAINTAINED*) (*MAINTAINED EAGER*) (*CACHED*) (*UNCHECKED*)"),
            vec![
                Token::Pragma(Pragma::Maintained(PragmaStrategy::Demand)),
                Token::Pragma(Pragma::Maintained(PragmaStrategy::Eager)),
                Token::Pragma(Pragma::Cached(PragmaStrategy::Demand, None)),
                Token::Pragma(Pragma::Unchecked),
            ]
        );
    }

    #[test]
    fn malformed_pragma_is_an_error() {
        assert!(lex("(*MAINTAINED SOMETIMES*)").is_err());
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("(* oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let ts = lex("a\nb\n  c").unwrap();
        assert_eq!(ts[0].span, Span::new(1, 1));
        assert_eq!(ts[1].span, Span::new(2, 1));
        assert_eq!(ts[2].span, Span::new(3, 3));
    }

    #[test]
    fn columns_point_at_token_starts() {
        let ts = lex("x := foo(1);\n  (*CACHED*) y").unwrap();
        let spans: Vec<Span> = ts.iter().map(|s| s.span).collect();
        assert_eq!(
            spans,
            vec![
                Span::new(1, 1),  // x
                Span::new(1, 3),  // :=
                Span::new(1, 6),  // foo
                Span::new(1, 9),  // (
                Span::new(1, 10), // 1
                Span::new(1, 11), // )
                Span::new(1, 12), // ;
                Span::new(2, 3),  // (*CACHED*)
                Span::new(2, 14), // y
            ]
        );
    }

    #[test]
    fn bad_character_reports_line() {
        match lex("x\n@") {
            Err(LangError::Lex { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn huge_integer_overflows() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
