//! The Alphonse program transformation (paper Section 5, Algorithm 2).
//!
//! Rewrites a surface module so that every relevant read becomes
//! `access(…)`, every relevant write becomes `modify(…, …)`, and every
//! relevant call becomes `call(…, …)` — producing the intermediate form the
//! paper's Algorithm 2 displays. The output is meant for inspection and
//! unparsing (the runtime behaviour of the operations lives in the
//! `alphonse` crate; the interpreter applies the same decisions directly).
//!
//! Two levels of precision:
//!
//! * [`TransformOptions::optimize`] off — the uniform instrumentation of
//!   Section 5: every access that *could* be top-level is wrapped.
//! * on — the Section 6.1 dataflow analysis drops checks for variables and
//!   procedures that can never be involved in the Alphonse computation.

use crate::analysis::{analyze, Instrumentation};
use crate::ast::*;
use crate::hir::Program;
use crate::token::Span;
use std::collections::HashSet;

/// Options for [`transform`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TransformOptions {
    /// Apply the Section 6.1 static check elimination.
    pub optimize: bool,
}

/// Counts of instrumented and plain operations — the quantity the
/// Section 6.1 optimization reduces (reported by experiment E2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Reads wrapped in `access`.
    pub accesses: usize,
    /// Writes wrapped in `modify`.
    pub modifies: usize,
    /// Calls wrapped in `call`.
    pub calls: usize,
    /// Reads left plain (locals, or statically irrelevant).
    pub plain_reads: usize,
    /// Writes left plain.
    pub plain_writes: usize,
    /// Calls left plain (builtins, or statically non-incremental).
    pub plain_calls: usize,
}

impl TransformReport {
    /// Total instrumented operations.
    pub fn instrumented(&self) -> usize {
        self.accesses + self.modifies + self.calls
    }

    /// Total operations considered.
    pub fn total(&self) -> usize {
        self.instrumented() + self.plain_reads + self.plain_writes + self.plain_calls
    }
}

/// Applies the transformation, returning the rewritten module and a count
/// of what was instrumented.
///
/// The module must already have passed [`crate::resolve`]; `program` is the
/// resolved form used for the Section 6.1 analysis.
pub fn transform(
    module: &Module,
    program: &Program,
    options: TransformOptions,
) -> (Module, TransformReport) {
    let instr = options.optimize.then(|| analyze(program));
    let mut t = Transformer {
        program,
        instr,
        report: TransformReport::default(),
        locals: Vec::new(),
    };
    let decls = module.decls.iter().map(|d| t.decl(d)).collect();
    (Module { decls }, t.report)
}

struct Transformer<'a> {
    program: &'a Program,
    /// `Some` when the Section 6.1 optimization is active.
    instr: Option<Instrumentation>,
    report: TransformReport,
    /// Names bound locally (params, locals, FOR variables) in the current
    /// procedure — their accesses are never instrumented (stack storage is
    /// excluded by the paper's TOP restriction).
    locals: Vec<HashSet<String>>,
}

fn wrap(name: &str, args: Vec<Expr>, span: Span) -> Expr {
    Expr::Call {
        callee: Callee::Proc(name.to_string()),
        args,
        span,
    }
}

impl Transformer<'_> {
    fn is_local(&self, name: &str) -> bool {
        self.locals.iter().any(|s| s.contains(name))
    }

    fn global_tracked(&self, name: &str) -> bool {
        match &self.instr {
            None => true,
            Some(i) => self
                .program
                .global_by_name
                .get(name)
                .is_some_and(|&idx| i.global_needs_check(idx)),
        }
    }

    fn field_tracked(&self, name: &str) -> bool {
        match &self.instr {
            None => true,
            Some(i) => i.field_needs_check(name),
        }
    }

    fn arrays_tracked(&self) -> bool {
        match &self.instr {
            None => true,
            Some(i) => i.tracked_arrays,
        }
    }

    fn proc_call_tracked(&self, name: &str) -> bool {
        let Some(&pid) = self.program.proc_by_name.get(name) else {
            return false; // builtin
        };
        match &self.instr {
            // Unoptimized: any top-level procedure call goes through `call`
            // (Algorithm 5 begins with the `tableptr = NIL` dynamic test).
            None => true,
            Some(_) => self.program.procs[pid].incremental.is_some(),
        }
    }

    fn method_call_tracked(&self, name: &str) -> bool {
        match &self.instr {
            None => true,
            Some(_) => self.program.types.iter().any(|t| {
                t.methods.iter().any(|m| {
                    m.name == name && self.program.procs[m.impl_proc].incremental.is_some()
                })
            }),
        }
    }

    fn decl(&mut self, d: &Decl) -> Decl {
        match d {
            Decl::Type(_) | Decl::Global(_) => d.clone(),
            Decl::Proc(p) => Decl::Proc(self.proc(p)),
        }
    }

    fn proc(&mut self, p: &ProcDecl) -> ProcDecl {
        let mut scope = HashSet::new();
        for param in &p.params {
            scope.insert(param.name.clone());
        }
        for l in &p.locals {
            for n in &l.names {
                scope.insert(n.clone());
            }
        }
        self.locals.push(scope);
        let locals = p
            .locals
            .iter()
            .map(|l| LocalDecl {
                names: l.names.clone(),
                ty: l.ty.clone(),
                init: l.init.as_ref().map(|e| self.read(e, false)),
            })
            .collect();
        let body = self.stmts(&p.body);
        self.locals.pop();
        ProcDecl {
            pragma: p.pragma,
            name: p.name.clone(),
            params: p.params.clone(),
            ret: p.ret.clone(),
            locals,
            body,
            span: p.span,
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let value = self.read(value, false);
                match target {
                    Expr::Var { name, span: vspan } => {
                        if !self.is_local(name) && self.global_tracked(name) {
                            self.report.modifies += 1;
                            // x := e  ~~>  modify(x, e)
                            Stmt::Expr {
                                expr: wrap(
                                    "modify",
                                    vec![
                                        Expr::Var {
                                            name: name.clone(),
                                            span: *vspan,
                                        },
                                        value,
                                    ],
                                    *span,
                                ),
                                span: *span,
                            }
                        } else {
                            self.report.plain_writes += 1;
                            Stmt::Assign {
                                target: target.clone(),
                                value,
                                span: *span,
                            }
                        }
                    }
                    Expr::Field {
                        obj,
                        name,
                        span: fspan,
                    } => {
                        // o.f := e — the receiver is *read* (pointer
                        // dereference counts as a read access of the
                        // pointer, Section 5), the field is modified.
                        let obj = self.read(obj, false);
                        if self.field_tracked(name) {
                            self.report.modifies += 1;
                            Stmt::Expr {
                                expr: wrap(
                                    "modify",
                                    vec![
                                        Expr::Field {
                                            obj: Box::new(obj),
                                            name: name.clone(),
                                            span: *fspan,
                                        },
                                        value,
                                    ],
                                    *span,
                                ),
                                span: *span,
                            }
                        } else {
                            self.report.plain_writes += 1;
                            Stmt::Assign {
                                target: Expr::Field {
                                    obj: Box::new(obj),
                                    name: name.clone(),
                                    span: *fspan,
                                },
                                value,
                                span: *span,
                            }
                        }
                    }
                    Expr::Index {
                        arr,
                        index,
                        span: ispan,
                    } => {
                        let arr = self.read(arr, false);
                        let index = self.read(index, false);
                        let target = Expr::Index {
                            arr: Box::new(arr),
                            index: Box::new(index),
                            span: *ispan,
                        };
                        if self.arrays_tracked() {
                            self.report.modifies += 1;
                            Stmt::Expr {
                                expr: wrap("modify", vec![target, value], *span),
                                span: *span,
                            }
                        } else {
                            self.report.plain_writes += 1;
                            Stmt::Assign {
                                target,
                                value,
                                span: *span,
                            }
                        }
                    }
                    other => Stmt::Assign {
                        target: other.clone(),
                        value,
                        span: *span,
                    },
                }
            }
            Stmt::If {
                arms,
                else_body,
                span,
            } => Stmt::If {
                arms: arms
                    .iter()
                    .map(|(c, b)| (self.read(c, false), self.stmts(b)))
                    .collect(),
                else_body: self.stmts(else_body),
                span: *span,
            },
            Stmt::While { cond, body, span } => Stmt::While {
                cond: self.read(cond, false),
                body: self.stmts(body),
                span: *span,
            },
            Stmt::For {
                var,
                from,
                to,
                by,
                body,
                span,
            } => {
                let from = self.read(from, false);
                let to = self.read(to, false);
                let by = by.as_ref().map(|e| self.read(e, false));
                self.locals
                    .last_mut()
                    .expect("inside a procedure")
                    .insert(var.clone());
                let body = self.stmts(body);
                Stmt::For {
                    var: var.clone(),
                    from,
                    to,
                    by,
                    body,
                    span: *span,
                }
            }
            Stmt::Return { value, span } => Stmt::Return {
                value: value.as_ref().map(|e| self.read(e, false)),
                span: *span,
            },
            Stmt::Expr { expr, span } => Stmt::Expr {
                expr: self.read(expr, false),
                span: *span,
            },
        }
    }

    /// Rewrites an expression in read position. `unchecked` suppresses
    /// access wrapping (Section 6.4) but not call wrapping (caching still
    /// applies inside UNCHECKED regions).
    fn read(&mut self, e: &Expr, unchecked: bool) -> Expr {
        match e {
            Expr::Int(_) | Expr::Text(_) | Expr::Bool(_) | Expr::Nil | Expr::New { .. } => {
                e.clone()
            }
            Expr::NewArray { elem, size, span } => Expr::NewArray {
                elem: elem.clone(),
                size: Box::new(self.read(size, unchecked)),
                span: *span,
            },
            Expr::Index { arr, index, span } => {
                let indexed = Expr::Index {
                    arr: Box::new(self.read(arr, unchecked)),
                    index: Box::new(self.read(index, unchecked)),
                    span: *span,
                };
                if !unchecked && self.arrays_tracked() {
                    self.report.accesses += 1;
                    wrap("access", vec![indexed], *span)
                } else {
                    self.report.plain_reads += 1;
                    indexed
                }
            }
            Expr::Var { name, span } => {
                if !unchecked && !self.is_local(name) && self.global_tracked(name) {
                    self.report.accesses += 1;
                    wrap("access", vec![e.clone()], *span)
                } else {
                    self.report.plain_reads += 1;
                    e.clone()
                }
            }
            Expr::Field { obj, name, span } => {
                let obj = self.read(obj, unchecked);
                let field = Expr::Field {
                    obj: Box::new(obj),
                    name: name.clone(),
                    span: *span,
                };
                if !unchecked && self.field_tracked(name) {
                    self.report.accesses += 1;
                    wrap("access", vec![field], *span)
                } else {
                    self.report.plain_reads += 1;
                    field
                }
            }
            Expr::Call { callee, args, span } => {
                let args: Vec<Expr> = args.iter().map(|a| self.read(a, unchecked)).collect();
                match callee {
                    Callee::Proc(name) => {
                        if self.proc_call_tracked(name) {
                            self.report.calls += 1;
                            // f(a…)  ~~>  call(f, a…)
                            let mut call_args = vec![Expr::Var {
                                name: name.clone(),
                                span: *span,
                            }];
                            call_args.extend(args);
                            wrap("call", call_args, *span)
                        } else {
                            self.report.plain_calls += 1;
                            Expr::Call {
                                callee: callee.clone(),
                                args,
                                span: *span,
                            }
                        }
                    }
                    Callee::Method { obj, name } => {
                        let obj = self.read(obj, unchecked);
                        if self.method_call_tracked(name) {
                            self.report.calls += 1;
                            // o.m(a…)  ~~>  call(o.m, a…)
                            let mut call_args = vec![Expr::Field {
                                obj: Box::new(obj),
                                name: name.clone(),
                                span: *span,
                            }];
                            call_args.extend(args);
                            wrap("call", call_args, *span)
                        } else {
                            self.report.plain_calls += 1;
                            Expr::Call {
                                callee: Callee::Method {
                                    obj: Box::new(obj),
                                    name: name.clone(),
                                },
                                args,
                                span: *span,
                            }
                        }
                    }
                }
            }
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(self.read(expr, unchecked)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.read(lhs, unchecked)),
                rhs: Box::new(self.read(rhs, unchecked)),
            },
            Expr::Unchecked { expr: inner, span } => Expr::Unchecked {
                expr: Box::new(self.read(inner, true)),
                span: *span,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;
    use crate::unparse::unparse;

    fn transformed(src: &str, optimize: bool) -> (Module, TransformReport) {
        let m = parse(src).unwrap();
        let p = resolve(&m).unwrap();
        transform(&m, &p, TransformOptions { optimize })
    }

    /// The paper's Algorithm 2 example, adapted to Alphonse-L (we have no
    /// pointer dereference, so `y^` is modelled by a field).
    const ALG2: &str = r#"
        VAR b : INTEGER;
        VAR p : INTEGER;
        (*CACHED*) PROCEDURE P2(n : INTEGER) : INTEGER =
        BEGIN RETURN n; END P2;
        PROCEDURE P1(c : INTEGER) : INTEGER =
        VAR a : INTEGER;
        BEGIN
            FOR a2 := 1 TO 10 DO
                a := a2;
                p := P2(a + b + c);
            END;
            RETURN p;
        END P1;
    "#;

    #[test]
    fn algorithm2_shape_is_reproduced() {
        let (m, report) = transformed(ALG2, false);
        let printed = unparse(&m);
        // The assignment to top-level p becomes modify(p, call(P2, …)) with
        // b accessed and locals a, c untouched — Algorithm 2's exact shape.
        assert!(
            printed.contains("modify(p, call(P2, (a + access(b)) + c));"),
            "unexpected transform output:\n{printed}"
        );
        // RETURN p reads top-level storage.
        assert!(printed.contains("RETURN access(p);"), "{printed}");
        assert!(report.accesses >= 2);
        assert!(report.modifies == 1);
        assert!(report.calls >= 1);
        // Locals a, a2, c never instrumented.
        assert!(!printed.contains("access(a)"), "{printed}");
        assert!(!printed.contains("access(c)"), "{printed}");
    }

    #[test]
    fn optimization_drops_untracked_sites() {
        let src = r#"
            VAR used, unused : INTEGER;
            (*CACHED*) PROCEDURE F(x : INTEGER) : INTEGER =
            BEGIN RETURN used + x; END F;
            PROCEDURE Mutator() =
            BEGIN
                unused := unused + 1;
                used := used + 1;
            END Mutator;
        "#;
        let (_, full) = transformed(src, false);
        let (m, opt) = transformed(src, true);
        assert!(
            opt.instrumented() < full.instrumented(),
            "6.1 must reduce instrumentation: {opt:?} vs {full:?}"
        );
        let printed = unparse(&m);
        // `unused` is provably uninvolved; `used` must stay checked even in
        // the mutator (its writes drive invalidation).
        assert!(!printed.contains("access(unused)"), "{printed}");
        assert!(!printed.contains("modify(unused"), "{printed}");
        assert!(printed.contains("modify(used"), "{printed}");
    }

    #[test]
    fn method_calls_are_wrapped() {
        let src = r#"
            TYPE T = OBJECT
                x : INTEGER;
            METHODS
                (*MAINTAINED*) m() : INTEGER := M;
            END;
            PROCEDURE M(t : T) : INTEGER = BEGIN RETURN t.x; END M;
            PROCEDURE Use(t : T) : INTEGER = BEGIN RETURN t.m(); END Use;
        "#;
        let (m, _) = transformed(src, true);
        let printed = unparse(&m);
        assert!(printed.contains("call(t.m)"), "{printed}");
        assert!(printed.contains("access(t.x)"), "{printed}");
    }

    #[test]
    fn unchecked_expressions_skip_access_but_keep_call() {
        let src = r#"
            VAR g : INTEGER;
            (*CACHED*) PROCEDURE F() : INTEGER = BEGIN RETURN g; END F;
            (*CACHED*) PROCEDURE H() : INTEGER =
            BEGIN RETURN (*UNCHECKED*) (g + F()); END H;
        "#;
        let (m, _) = transformed(src, false);
        let printed = unparse(&m);
        // Inside H's UNCHECKED region: g not accessed, F still call-wrapped.
        let h_part = printed.split("PROCEDURE H").nth(1).unwrap();
        assert!(!h_part.contains("access(g)"), "{printed}");
        assert!(h_part.contains("call(F)"), "{printed}");
    }

    #[test]
    fn report_totals_are_consistent() {
        let (_, r) = transformed(ALG2, false);
        assert_eq!(
            r.total(),
            r.accesses + r.modifies + r.calls + r.plain_reads + r.plain_writes + r.plain_calls
        );
        assert!(r.total() > 5);
    }
}
