//! Experiment E11 — Theorem 5.1 as a property test.
//!
//! "Given an Alphonse program P, Alphonse execution of P will produce the
//! same output as a conventional execution of P." We generate random
//! Alphonse-L programs (cached procedures over mutable globals, with
//! branching and cross-procedure calls) and random mutator scripts, run
//! them under both execution models, and require identical results at every
//! observation point.

use alphonse_lang::{compile, Interp, Mode, Val};
use proptest::prelude::*;
use std::fmt::Write;

/// One term of a generated procedure body.
#[derive(Debug, Clone)]
enum Term {
    Global(usize, i64),
    Param(i64),
    /// coeff * ProcJ(argument-expression-selector)
    Call(usize, ArgSel, i64),
}

/// How a nested call computes its argument.
#[derive(Debug, Clone, Copy)]
enum ArgSel {
    Const(i64),
    Param,
    ParamMinusOne,
}

#[derive(Debug, Clone)]
struct ProcSpec {
    /// Terms summed for the main branch.
    terms: Vec<Term>,
    /// If `Some(c)`: `IF x < c THEN RETURN <alt>; END;` first.
    branch: Option<(i64, i64)>,
    eager: bool,
}

#[derive(Debug, Clone)]
enum Op {
    Set(usize, i64),
    Call(usize, i64),
    Propagate,
}

#[derive(Debug, Clone)]
struct Case {
    n_globals: usize,
    inits: Vec<i64>,
    procs: Vec<ProcSpec>,
    script: Vec<Op>,
}

/// Renders the case as Alphonse-L source.
fn render(case: &Case) -> String {
    let mut src = String::new();
    for (i, init) in case.inits.iter().enumerate() {
        writeln!(src, "VAR g{i} : INTEGER := {init};").unwrap();
    }
    for (k, p) in case.procs.iter().enumerate() {
        let strategy = if p.eager { " EAGER" } else { "" };
        writeln!(
            src,
            "(*CACHED{strategy}*) PROCEDURE P{k}(x : INTEGER) : INTEGER ="
        )
        .unwrap();
        writeln!(src, "BEGIN").unwrap();
        if let Some((cutoff, alt)) = p.branch {
            writeln!(src, "    IF x < {cutoff} THEN RETURN {alt}; END;").unwrap();
        }
        let mut expr = String::from("0");
        for t in &p.terms {
            match t {
                Term::Global(g, c) => write!(expr, " + {c} * g{g}").unwrap(),
                Term::Param(c) => write!(expr, " + {c} * x").unwrap(),
                Term::Call(j, sel, c) => {
                    let arg = match sel {
                        ArgSel::Const(v) => format!("{v}"),
                        ArgSel::Param => "x".to_string(),
                        ArgSel::ParamMinusOne => "x - 1".to_string(),
                    };
                    write!(expr, " + {c} * P{j}({arg})").unwrap();
                }
            }
        }
        writeln!(src, "    RETURN {expr};").unwrap();
        writeln!(src, "END P{k};").unwrap();
    }
    // Negative coefficients would render as `+ -3 * x`; the grammar accepts
    // unary minus there, so nothing special is needed.
    src
}

fn run_case(case: &Case) {
    let src = render(case);
    let program = compile(&src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let conv = Interp::new(program.clone(), Mode::Conventional).unwrap();
    let alph = Interp::new(program, Mode::Alphonse).unwrap();
    conv.set_fuel(50_000_000);
    alph.set_fuel(50_000_000);
    // Every random script doubles as a structural audit: after each mutator
    // operation the runtime's internal invariants (edge symmetry, dirty-set
    // sanity, empty execution stack) must hold. `check_invariants` is a
    // debug-build no-op-free deep check; see its docs.
    let audit = || {
        if let Some(rt) = alph.runtime() {
            rt.check_invariants();
        }
    };
    audit();
    for op in &case.script {
        match op {
            Op::Set(g, v) => {
                let name = format!("g{}", g % case.n_globals);
                conv.set_global(&name, Val::Int(*v)).unwrap();
                alph.set_global(&name, Val::Int(*v)).unwrap();
                audit();
            }
            Op::Call(k, arg) => {
                let name = format!("P{}", k % case.procs.len());
                let c = conv.call(&name, vec![Val::Int(*arg)]);
                let a = alph.call(&name, vec![Val::Int(*arg)]);
                match (c, a) {
                    (Ok(cv), Ok(av)) => assert_eq!(
                        cv, av,
                        "Theorem 5.1 violated for {name}({arg})\nprogram:\n{src}"
                    ),
                    // Fuel exhaustion may hit one mode and not the other
                    // (the whole point is that they do different amounts of
                    // work); any *error* outcome ends the comparison.
                    _ => return,
                }
                audit();
            }
            Op::Propagate => {
                let _ = alph.propagate(); // fuel errors possible; states may legitimately diverge afterwards
                audit();
            }
        }
    }
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..5, 1usize..6).prop_flat_map(|(n_globals, n_procs)| {
        let term = move |k: usize| {
            let call_term = if k == 0 {
                Just(Term::Param(1)).boxed()
            } else {
                (
                    0..k,
                    prop_oneof![
                        (-4i64..5).prop_map(ArgSel::Const),
                        Just(ArgSel::Param),
                        Just(ArgSel::ParamMinusOne),
                    ],
                    -3i64..4,
                )
                    .prop_map(|(j, sel, c)| Term::Call(j, sel, c))
                    .boxed()
            };
            prop_oneof![
                3 => ((0..n_globals), -3i64..4).prop_map(|(g, c)| Term::Global(g, c)),
                2 => (-3i64..4).prop_map(Term::Param),
                2 => call_term,
            ]
        };
        let proc_spec = move |k: usize| {
            (
                proptest::collection::vec(term(k), 1..5),
                proptest::option::of((-3i64..4, -10i64..10)),
                any::<bool>(),
            )
                .prop_map(|(terms, branch, eager)| ProcSpec {
                    terms,
                    branch,
                    eager,
                })
        };
        let procs: Vec<_> = (0..n_procs).map(proc_spec).collect();
        let op = prop_oneof![
            3 => ((0..n_globals), -50i64..50).prop_map(|(g, v)| Op::Set(g, v)),
            4 => (any::<usize>(), -8i64..8).prop_map(|(k, a)| Op::Call(k, a)),
            1 => Just(Op::Propagate),
        ];
        (
            proptest::collection::vec(-20i64..20, n_globals),
            procs,
            proptest::collection::vec(op, 1..30),
        )
            .prop_map(move |(inits, procs, script)| Case {
                n_globals,
                inits,
                procs,
                script,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alphonse_execution_equals_conventional(case in case_strategy()) {
        run_case(&case);
    }

    /// Generated programs also exercise the printer: unparse is a fixpoint
    /// under reparse for every program the generator can produce.
    #[test]
    fn generated_programs_round_trip_through_unparse(case in case_strategy()) {
        use alphonse_lang::{parse, unparse};
        let src = render(&case);
        let printed = unparse(&parse(&src).unwrap());
        let reprinted = unparse(&parse(&printed).unwrap());
        prop_assert_eq!(printed, reprinted);
    }

    /// The transformation (both uniform and §6.1-optimized) never panics on
    /// generated programs and its report accounting is internally
    /// consistent.
    #[test]
    fn generated_programs_transform_cleanly(case in case_strategy()) {
        use alphonse_lang::{parse, transform, unparse, TransformOptions};
        let src = render(&case);
        let module = parse(&src).unwrap();
        let program = compile(&src).unwrap();
        for optimize in [false, true] {
            let (out, report) = transform(&module, &program, TransformOptions { optimize });
            prop_assert_eq!(
                report.total(),
                report.accesses + report.modifies + report.calls
                    + report.plain_reads + report.plain_writes + report.plain_calls
            );
            // The transformed module still unparses (it is display syntax).
            let _ = unparse(&out);
        }
        // Optimized never instruments more than uniform.
        let (_, uniform) = transform(&module, &program, TransformOptions { optimize: false });
        let (_, optimized) = transform(&module, &program, TransformOptions { optimize: true });
        prop_assert!(optimized.instrumented() <= uniform.instrumented());
    }
}

#[test]
fn a_known_tricky_case_agrees() {
    // Recursive calls with ParamMinusOne arguments plus a base-case branch
    // exercise deep instance chains.
    let case = Case {
        n_globals: 2,
        inits: vec![5, -3],
        procs: vec![
            ProcSpec {
                terms: vec![Term::Global(0, 2), Term::Param(1)],
                branch: None,
                eager: false,
            },
            ProcSpec {
                terms: vec![
                    Term::Call(0, ArgSel::Param, 1),
                    Term::Call(1, ArgSel::ParamMinusOne, 1),
                    Term::Global(1, 1),
                ],
                branch: Some((0, 7)),
                eager: true,
            },
        ],
        script: vec![
            Op::Call(1, 6),
            Op::Set(0, 9),
            Op::Propagate,
            Op::Call(1, 6),
            Op::Set(1, 0),
            Op::Call(1, 7),
            Op::Call(0, 3),
        ],
    };
    run_case(&case);
}
