//! Algorithm 10 — the paper's spreadsheet, written in Alphonse-L.
//!
//! "We can extend the previous attribute grammar into a spreadsheet … An
//! array of Cell objects represents the spreadsheet. In order to allow the
//! cell functions to reference the values of other cells, we add a CellExp
//! production … This example shows the use of top-level data references and
//! illustrates how one Alphonse program can be used to construct another."

use alphonse_lang::{compile, Interp, Mode, Val};

const SHEET: &str = r#"
    (* Expression trees, abbreviated from Algorithms 7-9 (no environments:
       spreadsheet formulas are closed except for cell references). *)
    TYPE Exp = OBJECT
    METHODS
        (*MAINTAINED*) value() : INTEGER := NoValue;
    END;
    PROCEDURE NoValue(o : Exp) : INTEGER =
    BEGIN RETURN 0; END NoValue;

    TYPE IntExp = Exp OBJECT
        int : INTEGER;
    OVERRIDES
        (*MAINTAINED*) value := IntVal;
    END;
    PROCEDURE IntVal(o : IntExp) : INTEGER =
    BEGIN RETURN o.int; END IntVal;

    TYPE PlusExp = Exp OBJECT
        expl, exp2 : Exp;
    OVERRIDES
        (*MAINTAINED*) value := SumVal;
    END;
    PROCEDURE SumVal(o : PlusExp) : INTEGER =
    BEGIN RETURN o.expl.value() + o.exp2.value(); END SumVal;

    (* The Cell object of Algorithm 10. *)
    TYPE Cell = OBJECT
        func : Exp;
    METHODS
        (*MAINTAINED*) value() : INTEGER := CellFuncVal;
    END;
    PROCEDURE CellFuncVal(o : Cell) : INTEGER =
    BEGIN RETURN o.func.value(); END CellFuncVal;

    (* cells : ARRAY [0..W*H-1] OF Cell — the paper's 2-D array flattened
       row-major. *)
    VAR cells : ARRAY OF Cell;
    VAR width : INTEGER;

    (* CellExp: "uses two integer valued terminal fields to select another
       cell in the array and return the result of its value method". *)
    TYPE CellExp = Exp OBJECT
        x, y : INTEGER;
    OVERRIDES
        (*MAINTAINED*) value := CellVal;
    END;
    PROCEDURE CellVal(o : CellExp) : INTEGER =
    BEGIN
        RETURN cells[o.x * width + o.y].value();
    END CellVal;

    (* ----- setup and builders ----- *)
    PROCEDURE Init(w, h : INTEGER) =
    VAR c : Cell;
    BEGIN
        width := w;
        cells := NEW(ARRAY OF Cell, w * h);
        FOR i := 0 TO w * h - 1 DO
            c := NEW(Cell);
            c.func := MakeInt(0);
            cells[i] := c;
        END;
    END Init;

    PROCEDURE MakeInt(v : INTEGER) : Exp =
    VAR e : IntExp;
    BEGIN e := NEW(IntExp); e.int := v; RETURN e; END MakeInt;

    PROCEDURE MakePlus(a, b : Exp) : Exp =
    VAR e : PlusExp;
    BEGIN e := NEW(PlusExp); e.expl := a; e.exp2 := b; RETURN e; END MakePlus;

    PROCEDURE MakeCellRef(x, y : INTEGER) : Exp =
    VAR e : CellExp;
    BEGIN e := NEW(CellExp); e.x := x; e.y := y; RETURN e; END MakeCellRef;

    PROCEDURE SetFunc(x, y : INTEGER; f : Exp) =
    BEGIN cells[x * width + y].func := f; END SetFunc;

    PROCEDURE ValueAt(x, y : INTEGER) : INTEGER =
    BEGIN RETURN cells[x * width + y].value(); END ValueAt;

    PROCEDURE CellCount() : INTEGER =
    BEGIN RETURN LEN(cells); END CellCount;
"#;

fn setup(mode: Mode, w: i64, h: i64) -> Interp {
    let program = compile(SHEET).expect("spreadsheet program compiles");
    let interp = Interp::new(program, mode).unwrap();
    interp.call("Init", vec![Val::Int(w), Val::Int(h)]).unwrap();
    interp
}

#[test]
fn cells_evaluate_their_expression_trees() {
    for mode in [Mode::Conventional, Mode::Alphonse] {
        let interp = setup(mode, 4, 4);
        assert_eq!(interp.call("CellCount", vec![]).unwrap(), Val::Int(16));
        // cells[1,1] = 20 + 22.
        let f = {
            let a = interp.call("MakeInt", vec![Val::Int(20)]).unwrap();
            let b = interp.call("MakeInt", vec![Val::Int(22)]).unwrap();
            interp.call("MakePlus", vec![a, b]).unwrap()
        };
        interp
            .call("SetFunc", vec![Val::Int(1), Val::Int(1), f])
            .unwrap();
        assert_eq!(
            interp
                .call("ValueAt", vec![Val::Int(1), Val::Int(1)])
                .unwrap(),
            Val::Int(42),
            "mode {mode:?}"
        );
    }
}

#[test]
fn cell_references_cross_the_grid() {
    let interp = setup(Mode::Alphonse, 3, 3);
    // cells[0,0] = 7; cells[2,2] = cells[0,0] + cells[0,0].
    let seven = interp.call("MakeInt", vec![Val::Int(7)]).unwrap();
    interp
        .call("SetFunc", vec![Val::Int(0), Val::Int(0), seven])
        .unwrap();
    let f = {
        let r1 = interp
            .call("MakeCellRef", vec![Val::Int(0), Val::Int(0)])
            .unwrap();
        let r2 = interp
            .call("MakeCellRef", vec![Val::Int(0), Val::Int(0)])
            .unwrap();
        interp.call("MakePlus", vec![r1, r2]).unwrap()
    };
    interp
        .call("SetFunc", vec![Val::Int(2), Val::Int(2), f])
        .unwrap();
    assert_eq!(
        interp
            .call("ValueAt", vec![Val::Int(2), Val::Int(2)])
            .unwrap(),
        Val::Int(14)
    );
    // Edit the source cell's formula: the dependent cell updates.
    let fifty = interp.call("MakeInt", vec![Val::Int(50)]).unwrap();
    interp
        .call("SetFunc", vec![Val::Int(0), Val::Int(0), fifty])
        .unwrap();
    assert_eq!(
        interp
            .call("ValueAt", vec![Val::Int(2), Val::Int(2)])
            .unwrap(),
        Val::Int(100)
    );
}

#[test]
fn one_edit_recomputes_only_its_cone() {
    let interp = setup(Mode::Alphonse, 4, 4);
    // A chain: cell[0,k] = cell[0,k-1] + 1 for k = 1..3; two independent
    // cells elsewhere.
    let one = interp.call("MakeInt", vec![Val::Int(1)]).unwrap();
    interp
        .call("SetFunc", vec![Val::Int(0), Val::Int(0), one])
        .unwrap();
    for k in 1..4i64 {
        let f = {
            let prev = interp
                .call("MakeCellRef", vec![Val::Int(0), Val::Int(k - 1)])
                .unwrap();
            let one = interp.call("MakeInt", vec![Val::Int(1)]).unwrap();
            interp.call("MakePlus", vec![prev, one]).unwrap()
        };
        interp
            .call("SetFunc", vec![Val::Int(0), Val::Int(k), f])
            .unwrap();
    }
    assert_eq!(
        interp
            .call("ValueAt", vec![Val::Int(0), Val::Int(3)])
            .unwrap(),
        Val::Int(4)
    );
    // Edit the head: the whole chain re-evaluates, but nothing else.
    let rt = interp.runtime().unwrap().clone();
    let hundred = interp.call("MakeInt", vec![Val::Int(100)]).unwrap();
    let before = rt.stats();
    interp
        .call("SetFunc", vec![Val::Int(0), Val::Int(0), hundred])
        .unwrap();
    assert_eq!(
        interp
            .call("ValueAt", vec![Val::Int(0), Val::Int(3)])
            .unwrap(),
        Val::Int(103)
    );
    let d = rt.stats().delta_since(&before);
    assert!(
        d.executions <= 12,
        "chain of 4 cells + expressions, got {} executions",
        d.executions
    );
}

#[test]
fn out_of_bounds_reference_is_a_runtime_error() {
    let interp = setup(Mode::Alphonse, 2, 2);
    let f = interp
        .call("MakeCellRef", vec![Val::Int(5), Val::Int(5)])
        .unwrap();
    interp
        .call("SetFunc", vec![Val::Int(0), Val::Int(0), f])
        .unwrap();
    let err = interp
        .call("ValueAt", vec![Val::Int(0), Val::Int(0)])
        .unwrap_err();
    assert!(err.to_string().contains("out of bounds"), "{err}");
}

#[test]
fn conventional_and_alphonse_agree_on_random_sheets() {
    let conv = setup(Mode::Conventional, 3, 3);
    let alph = setup(Mode::Alphonse, 3, 3);
    // Fill every cell with k, then wire diagonal references, then edit.
    for interp in [&conv, &alph] {
        for x in 0..3i64 {
            for y in 0..3i64 {
                let v = interp.call("MakeInt", vec![Val::Int(x * 10 + y)]).unwrap();
                interp
                    .call("SetFunc", vec![Val::Int(x), Val::Int(y), v])
                    .unwrap();
            }
        }
        for k in 1..3i64 {
            let f = {
                let r = interp
                    .call("MakeCellRef", vec![Val::Int(k - 1), Val::Int(k - 1)])
                    .unwrap();
                let c = interp.call("MakeInt", vec![Val::Int(k)]).unwrap();
                interp.call("MakePlus", vec![r, c]).unwrap()
            };
            interp
                .call("SetFunc", vec![Val::Int(k), Val::Int(k), f])
                .unwrap();
        }
    }
    for x in 0..3i64 {
        for y in 0..3i64 {
            assert_eq!(
                conv.call("ValueAt", vec![Val::Int(x), Val::Int(y)])
                    .unwrap(),
                alph.call("ValueAt", vec![Val::Int(x), Val::Int(y)])
                    .unwrap(),
                "cell ({x},{y}) diverged"
            );
        }
    }
}
