//! Feature-level coverage of the Alphonse-L interpreter: control flow,
//! text handling, arrays, inheritance, output, strategies, and failure
//! modes — each in both execution models where meaningful.

use alphonse_lang::{compile, Interp, LangError, Mode, Val};

fn run(src: &str, mode: Mode) -> Interp {
    Interp::new(compile(src).expect("program compiles"), mode).unwrap()
}

fn both(src: &str) -> [Interp; 2] {
    [run(src, Mode::Conventional), run(src, Mode::Alphonse)]
}

#[test]
fn loops_and_arithmetic() {
    let src = r#"
        PROCEDURE SumTo(n : INTEGER) : INTEGER =
        VAR s : INTEGER := 0;
        BEGIN
            FOR i := 1 TO n DO s := s + i; END;
            RETURN s;
        END SumTo;
        PROCEDURE CountDown(n : INTEGER) : INTEGER =
        VAR c : INTEGER := 0;
        BEGIN
            FOR i := n TO 1 BY -1 DO c := c + 1; END;
            RETURN c;
        END CountDown;
        PROCEDURE Collatz(n : INTEGER) : INTEGER =
        VAR steps : INTEGER := 0;
        BEGIN
            WHILE n # 1 DO
                IF n MOD 2 = 0 THEN n := n DIV 2;
                ELSE n := 3 * n + 1;
                END;
                steps := steps + 1;
            END;
            RETURN steps;
        END Collatz;
    "#;
    for interp in both(src) {
        assert_eq!(
            interp.call("SumTo", vec![Val::Int(100)]).unwrap(),
            Val::Int(5050)
        );
        assert_eq!(
            interp.call("SumTo", vec![Val::Int(0)]).unwrap(),
            Val::Int(0)
        );
        assert_eq!(
            interp.call("CountDown", vec![Val::Int(5)]).unwrap(),
            Val::Int(5)
        );
        assert_eq!(
            interp.call("Collatz", vec![Val::Int(27)]).unwrap(),
            Val::Int(111)
        );
    }
}

#[test]
fn text_operations_and_print() {
    let src = r#"
        PROCEDURE Greet(name : TEXT) : TEXT =
        BEGIN RETURN "hello, " & name & "!"; END Greet;
        PROCEDURE Shout(n : INTEGER) =
        BEGIN
            FOR i := 1 TO n DO Print("hi"); END;
            Print(n * 10);
            Print(TRUE);
        END Shout;
    "#;
    for interp in both(src) {
        assert_eq!(
            interp.call("Greet", vec![Val::text("world")]).unwrap(),
            Val::text("hello, world!")
        );
        interp.call("Shout", vec![Val::Int(2)]).unwrap();
        assert_eq!(interp.take_output(), "hi\nhi\n20\nTRUE\n");
        assert_eq!(interp.output(), "", "take_output drains");
    }
}

#[test]
fn arrays_read_write_len() {
    let src = r#"
        VAR data : ARRAY OF INTEGER;
        PROCEDURE Init(n : INTEGER) =
        BEGIN
            data := NEW(ARRAY OF INTEGER, n);
            FOR i := 0 TO n - 1 DO data[i] := i * i; END;
        END Init;
        PROCEDURE Get(i : INTEGER) : INTEGER =
        BEGIN RETURN data[i]; END Get;
        PROCEDURE Size() : INTEGER =
        BEGIN RETURN LEN(data); END Size;
        (*CACHED*) PROCEDURE SumAll() : INTEGER =
        VAR s : INTEGER := 0;
        BEGIN
            FOR i := 0 TO LEN(data) - 1 DO s := s + data[i]; END;
            RETURN s;
        END SumAll;
    "#;
    for interp in both(src) {
        interp.call("Init", vec![Val::Int(10)]).unwrap();
        assert_eq!(interp.call("Size", vec![]).unwrap(), Val::Int(10));
        assert_eq!(interp.call("Get", vec![Val::Int(7)]).unwrap(), Val::Int(49));
        assert_eq!(interp.call("SumAll", vec![]).unwrap(), Val::Int(285));
    }
    // Incremental: SumAll caches; element writes invalidate it.
    let interp = run(src, Mode::Alphonse);
    interp.call("Init", vec![Val::Int(10)]).unwrap();
    assert_eq!(interp.call("SumAll", vec![]).unwrap(), Val::Int(285));
    let rt = interp.runtime().unwrap().clone();
    let before = rt.stats();
    assert_eq!(interp.call("SumAll", vec![]).unwrap(), Val::Int(285));
    assert_eq!(rt.stats().delta_since(&before).executions, 0, "cached");
}

#[test]
fn array_errors() {
    let src = r#"
        VAR data : ARRAY OF INTEGER;
        PROCEDURE MakeIt(n : INTEGER) =
        BEGIN data := NEW(ARRAY OF INTEGER, n); END MakeIt;
        PROCEDURE Get(i : INTEGER) : INTEGER =
        BEGIN RETURN data[i]; END Get;
    "#;
    let interp = run(src, Mode::Alphonse);
    // Indexing a NIL array.
    let err = interp.call("Get", vec![Val::Int(0)]).unwrap_err();
    assert!(err.to_string().contains("NIL array"), "{err}");
    interp.call("MakeIt", vec![Val::Int(3)]).unwrap();
    for bad in [-1i64, 3, 1000] {
        let err = interp.call("Get", vec![Val::Int(bad)]).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }
    let err = interp.call("MakeIt", vec![Val::Int(-5)]).unwrap_err();
    assert!(err.to_string().contains("negative array size"), "{err}");
}

#[test]
fn method_inheritance_three_levels() {
    let src = r#"
        TYPE A = OBJECT
            tag : INTEGER;
        METHODS
            describe() : TEXT := DescA;
            id() : INTEGER := IdImpl;
        END;
        TYPE B = A OBJECT
        OVERRIDES
            describe := DescB;
        END;
        TYPE C = B OBJECT
        OVERRIDES
            describe := DescC;
        END;
        PROCEDURE DescA(o : A) : TEXT = BEGIN RETURN "A"; END DescA;
        PROCEDURE DescB(o : B) : TEXT = BEGIN RETURN "B"; END DescB;
        PROCEDURE DescC(o : C) : TEXT = BEGIN RETURN "C"; END DescC;
        PROCEDURE IdImpl(o : A) : INTEGER = BEGIN RETURN o.tag; END IdImpl;

        PROCEDURE Describe(o : A) : TEXT =
        BEGIN RETURN o.describe(); END Describe;
    "#;
    for interp in both(src) {
        for (ty, expect) in [("A", "A"), ("B", "B"), ("C", "C")] {
            let o = interp.new_object(ty).unwrap();
            interp.set_field(&o, "tag", Val::Int(7)).unwrap();
            assert_eq!(
                interp.call("Describe", vec![o.clone()]).unwrap(),
                Val::text(expect)
            );
            // Inherited (non-overridden) method works on subtypes.
            assert_eq!(interp.call_method(o, "id", vec![]).unwrap(), Val::Int(7));
        }
    }
}

#[test]
fn runtime_errors_are_reported() {
    let src = r#"
        PROCEDURE DivBy(n : INTEGER) : INTEGER =
        BEGIN RETURN 100 DIV n; END DivBy;
        PROCEDURE ModBy(n : INTEGER) : INTEGER =
        BEGIN RETURN 100 MOD n; END ModBy;
        TYPE T = OBJECT x : INTEGER; END;
        PROCEDURE Deref(o : T) : INTEGER =
        BEGIN RETURN o.x; END Deref;
        PROCEDURE NoReturn(n : INTEGER) : INTEGER =
        BEGIN
            IF n > 0 THEN RETURN n; END;
        END NoReturn;
        PROCEDURE Spin() =
        BEGIN WHILE TRUE DO END; END Spin;
    "#;
    for interp in both(src) {
        assert_eq!(
            interp.call("DivBy", vec![Val::Int(4)]).unwrap(),
            Val::Int(25)
        );
        assert!(matches!(
            interp.call("DivBy", vec![Val::Int(0)]),
            Err(LangError::Runtime { .. })
        ));
        assert!(matches!(
            interp.call("ModBy", vec![Val::Int(0)]),
            Err(LangError::Runtime { .. })
        ));
        assert!(interp
            .call("Deref", vec![Val::Nil])
            .unwrap_err()
            .to_string()
            .contains("NIL"));
        assert!(interp
            .call("NoReturn", vec![Val::Int(0)])
            .unwrap_err()
            .to_string()
            .contains("without RETURN"));
        interp.set_fuel(10_000);
        assert!(interp
            .call("Spin", vec![])
            .unwrap_err()
            .to_string()
            .contains("fuel"));
    }
}

#[test]
fn eager_maintained_method_updates_on_propagate() {
    let src = r#"
        TYPE Box = OBJECT
            v : INTEGER;
        METHODS
            (*MAINTAINED EAGER*) doubled() : INTEGER := Doubled;
        END;
        PROCEDURE Doubled(b : Box) : INTEGER =
        BEGIN RETURN b.v * 2; END Doubled;
    "#;
    let interp = run(src, Mode::Alphonse);
    let b = interp.new_object("Box").unwrap();
    interp.set_field(&b, "v", Val::Int(5)).unwrap();
    assert_eq!(
        interp.call_method(b.clone(), "doubled", vec![]).unwrap(),
        Val::Int(10)
    );
    interp.set_field(&b, "v", Val::Int(9)).unwrap();
    interp.propagate().unwrap(); // eager: updates now
    let rt = interp.runtime().unwrap().clone();
    let before = rt.stats();
    assert_eq!(
        interp.call_method(b, "doubled", vec![]).unwrap(),
        Val::Int(18)
    );
    assert_eq!(
        rt.stats().delta_since(&before).executions,
        0,
        "already updated during propagate"
    );
}

#[test]
fn host_api_errors() {
    let src = "VAR g : INTEGER; TYPE T = OBJECT x : INTEGER; END;";
    let interp = run(src, Mode::Alphonse);
    assert!(interp.call("Nope", vec![]).is_err());
    assert!(interp.global("nope").is_err());
    assert!(interp.set_global("nope", Val::Int(1)).is_err());
    assert!(interp.new_object("Nope").is_err());
    let t = interp.new_object("T").unwrap();
    assert!(interp.field(&t, "nope").is_err());
    assert!(interp.field(&Val::Int(3), "x").is_err());
    assert!(interp.call_method(Val::Nil, "m", vec![]).is_err());
    assert!(interp.call_method(t, "nope", vec![]).is_err());
    assert_eq!(interp.global("g").unwrap(), Val::Int(0), "default value");
}

#[test]
fn tracked_slots_grow_only_under_incremental_reads() {
    let src = r#"
        TYPE P = OBJECT x, y : INTEGER; END;
        VAR p : P;
        PROCEDURE Mk() = BEGIN p := NEW(P); p.x := 1; p.y := 2; END Mk;
        (*CACHED*) PROCEDURE GetX() : INTEGER = BEGIN RETURN p.x; END GetX;
        PROCEDURE GetYPlain() : INTEGER = BEGIN RETURN p.y; END GetYPlain;
    "#;
    let interp = run(src, Mode::Alphonse);
    interp.call("Mk", vec![]).unwrap();
    assert_eq!(interp.tracked_slots(), 0, "no tracked slots before reads");
    interp.call("GetYPlain", vec![]).unwrap();
    assert_eq!(interp.tracked_slots(), 0, "plain proc reads do not promote");
    interp.call("GetX", vec![]).unwrap();
    assert_eq!(interp.tracked_slots(), 1, "only p.x promoted (Algorithm 3)");
}

#[test]
fn bulk_global_writes_commit_as_one_batch() {
    let src = r#"
        VAR a, b, c : INTEGER;
        (*CACHED*) PROCEDURE Sum() : INTEGER = BEGIN RETURN a + b + c; END Sum;
    "#;
    for interp in both(src) {
        interp.call("Sum", vec![]).unwrap();
        interp
            .set_globals([
                ("a", Val::Int(1)),
                ("b", Val::Int(2)),
                ("a", Val::Int(10)), // last write wins
                ("c", Val::Int(3)),
            ])
            .unwrap();
        assert_eq!(interp.call("Sum", vec![]).unwrap(), Val::Int(15));
        assert_eq!(interp.global("a").unwrap(), Val::Int(10));
        if let Some(rt) = interp.runtime() {
            let s = rt.stats();
            assert_eq!(s.batches, 1);
            assert_eq!(s.batched_writes, 4);
            assert_eq!(s.coalesced_writes, 1);
        }
    }
}

#[test]
fn bulk_global_writes_are_atomic_on_unknown_names() {
    let src = "VAR a : INTEGER;";
    let interp = run(src, Mode::Alphonse);
    assert!(interp
        .set_globals([("a", Val::Int(5)), ("nope", Val::Int(1))])
        .is_err());
    assert_eq!(
        interp.global("a").unwrap(),
        Val::Int(0),
        "failed bulk write must not apply any edit"
    );
}

#[test]
fn bulk_field_writes_match_sequential_writes() {
    let src = r#"
        TYPE P = OBJECT x, y : INTEGER; END;
        VAR p : P;
        PROCEDURE Mk() = BEGIN p := NEW(P); END Mk;
        (*CACHED*) PROCEDURE Mag() : INTEGER =
        BEGIN RETURN p.x * p.x + p.y * p.y; END Mag;
    "#;
    for interp in both(src) {
        interp.call("Mk", vec![]).unwrap();
        interp.call("Mag", vec![]).unwrap(); // promotes p.x / p.y if tracked
        let p = interp.global("p").unwrap();
        interp
            .set_fields([(&p, "x", Val::Int(3)), (&p, "y", Val::Int(4))])
            .unwrap();
        assert_eq!(interp.call("Mag", vec![]).unwrap(), Val::Int(25));
        assert!(interp
            .set_fields([(&p, "x", Val::Int(9)), (&p, "nope", Val::Int(0))])
            .is_err());
        assert_eq!(
            interp.field(&p, "x").unwrap(),
            Val::Int(3),
            "failed bulk write must not apply any edit"
        );
    }
}

#[test]
fn bulk_element_writes_match_sequential_writes() {
    let src = r#"
        VAR data : ARRAY OF INTEGER;
        PROCEDURE Init(n : INTEGER) =
        BEGIN data := NEW(ARRAY OF INTEGER, n); END Init;
        (*CACHED*) PROCEDURE SumAll() : INTEGER =
        VAR s : INTEGER := 0;
        BEGIN
            FOR i := 0 TO LEN(data) - 1 DO s := s + data[i]; END;
            RETURN s;
        END SumAll;
    "#;
    for interp in both(src) {
        interp.call("Init", vec![Val::Int(4)]).unwrap();
        interp.call("SumAll", vec![]).unwrap(); // promotes elements if tracked
        let data = interp.global("data").unwrap();
        interp
            .set_elements(
                &data,
                [(0, Val::Int(1)), (2, Val::Int(2)), (0, Val::Int(10))],
            )
            .unwrap();
        assert_eq!(interp.call("SumAll", vec![]).unwrap(), Val::Int(12));
        // A bad index leaves the array untouched.
        assert!(interp
            .set_elements(&data, [(1, Val::Int(50)), (99, Val::Int(0))])
            .is_err());
        assert_eq!(interp.call("SumAll", vec![]).unwrap(), Val::Int(12));
    }
    // Non-array target.
    let interp = run(src, Mode::Alphonse);
    let err = interp
        .set_elements(&Val::Int(5), [(0, Val::Int(0))])
        .unwrap_err();
    assert!(err.to_string().contains("non-array"), "{err}");
}

#[test]
fn steps_counter_and_debug() {
    let src = "PROCEDURE F() : INTEGER = BEGIN RETURN 1; END F;";
    let interp = run(src, Mode::Conventional);
    let s0 = interp.steps();
    interp.call("F", vec![]).unwrap();
    assert!(interp.steps() > s0);
    assert!(format!("{interp:?}").contains("Conventional"));
    assert_eq!(interp.mode(), Mode::Conventional);
    assert!(interp.runtime().is_none());
    assert_eq!(interp.heap_objects(), 0);
}

#[test]
fn cached_lru_pragma_bounds_the_value_cache() {
    // The paper (§3.3): "Additional pragma arguments allow the
    // specification of the caching technique, cache size, and the
    // replacement algorithm."
    let src = r#"
        (*CACHED LRU 2*) PROCEDURE Square(n : INTEGER) : INTEGER =
        BEGIN
            RETURN n * n;
        END Square;
    "#;
    let interp = run(src, Mode::Alphonse);
    let rt = interp.runtime().unwrap().clone();
    // Three distinct arguments with capacity 2: the first gets evicted.
    for k in [1i64, 2, 3] {
        assert_eq!(
            interp.call("Square", vec![Val::Int(k)]).unwrap(),
            Val::Int(k * k)
        );
    }
    assert_eq!(rt.stats().executions, 3);
    // 2 and 3 are live (no recomputation)…
    interp.call("Square", vec![Val::Int(3)]).unwrap();
    assert_eq!(rt.stats().executions, 3);
    // …1 was evicted and recomputes.
    interp.call("Square", vec![Val::Int(1)]).unwrap();
    assert_eq!(rt.stats().executions, 4);
}

#[test]
fn lru_pragma_round_trips_through_unparse() {
    use alphonse_lang::{parse, unparse};
    let src = "(*CACHED LRU 16*) PROCEDURE F(n : INTEGER) : INTEGER =\nBEGIN RETURN n; END F;";
    let printed = unparse(&parse(src).unwrap());
    assert!(printed.contains("(*CACHED LRU 16*)"), "{printed}");
    let reparsed = unparse(&parse(&printed).unwrap());
    assert_eq!(printed, reparsed);
}

#[test]
fn bad_lru_capacity_is_a_lex_error() {
    for bad in ["(*CACHED LRU 0*)", "(*CACHED LRU nope*)", "(*CACHED LRU*)"] {
        let src = format!("{bad} PROCEDURE F() = BEGIN RETURN; END F;");
        assert!(compile(&src).is_err(), "{bad} should be rejected");
    }
}

#[test]
fn errors_do_not_poison_the_cache() {
    // A failing cached call must fail again on the next identical call —
    // not replay a sentinel NIL from the memo.
    let src = r#"
        VAR d : INTEGER := 0;
        (*CACHED*) PROCEDURE Div(n : INTEGER) : INTEGER =
        BEGIN RETURN n DIV d; END Div;
    "#;
    let interp = run(src, Mode::Alphonse);
    for _ in 0..3 {
        let err = interp.call("Div", vec![Val::Int(10)]).unwrap_err();
        assert!(err.to_string().contains("DIV by zero"), "{err}");
    }
    // After the mutator repairs the state, the call succeeds.
    interp.set_global("d", Val::Int(5)).unwrap();
    assert_eq!(interp.call("Div", vec![Val::Int(10)]).unwrap(), Val::Int(2));
}

#[test]
fn propagate_surfaces_eager_errors_and_recovers() {
    let src = r#"
        VAR d : INTEGER := 5;
        (*CACHED EAGER*) PROCEDURE Div() : INTEGER =
        BEGIN RETURN 100 DIV d; END Div;
    "#;
    let interp = run(src, Mode::Alphonse);
    assert_eq!(interp.call("Div", vec![]).unwrap(), Val::Int(20));
    interp.set_global("d", Val::Int(0)).unwrap();
    let err = interp.propagate().unwrap_err();
    assert!(err.to_string().contains("DIV by zero"), "{err}");
    // Repair and re-demand: the poisoned instance re-executes.
    interp.set_global("d", Val::Int(4)).unwrap();
    assert_eq!(interp.call("Div", vec![]).unwrap(), Val::Int(25));
}

#[test]
fn new_static_rejections() {
    // Duplicate parameter names.
    assert!(compile("PROCEDURE F(x : INTEGER; x : INTEGER) = BEGIN RETURN; END F;").is_err());
    // Local duplicating a parameter.
    assert!(compile("PROCEDURE F(x : INTEGER) = VAR x : INTEGER; BEGIN RETURN; END F;").is_err());
    // Builtin name collision.
    assert!(compile("PROCEDURE MAX(a : INTEGER) : INTEGER = BEGIN RETURN a; END MAX;").is_err());
    // Forward reference in a global initializer.
    assert!(compile("VAR a : INTEGER := b + 1; VAR b : INTEGER := 10;").is_err());
    // Backward reference is fine.
    assert!(compile("VAR b : INTEGER := 10; VAR a : INTEGER := b + 1;").is_ok());
    // FOR variable is read-only.
    assert!(compile("PROCEDURE F() = BEGIN FOR i := 1 TO 3 DO i := 5; END; END F;").is_err());
    // Mismatched END trailer is diagnosed by name.
    let err = compile("PROCEDURE Foo() = BEGIN RETURN; END Fo0;").unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn static_strata_seed_instance_heights() {
    // The diamond Total(Left, Right): the compiler's SCC condensation puts
    // Left/Right at stratum 1 and Total at 2, so every instance node is
    // born at its final height and the online height-raise cascade never
    // fires for the bottom-up first evaluation.
    let src = r#"
        VAR base : INTEGER := 10;
        VAR rate : INTEGER := 3;
        (*CACHED*) PROCEDURE Left() : INTEGER =
        BEGIN RETURN base * 2; END Left;
        (*CACHED*) PROCEDURE Right() : INTEGER =
        BEGIN RETURN rate + 1; END Right;
        (*CACHED*) PROCEDURE Total() : INTEGER =
        BEGIN RETURN Left() + Right(); END Total;
    "#;
    let interp = run(src, Mode::Alphonse);
    assert_eq!(interp.call("Total", vec![]).unwrap(), Val::Int(24));
    let s = interp.runtime().unwrap().stats();
    assert_eq!(s.height_seeded, 3, "all three instances took a static hint");
    assert_eq!(s.height_raises, 0, "seeded heights preempt online raises");

    // And seeding is invisible to semantics: mutate, recompute.
    interp.set_global("base", Val::Int(1)).unwrap();
    assert_eq!(interp.call("Total", vec![]).unwrap(), Val::Int(6));
}
