//! Golden "UI" tests for the lint pass behind `alphonse-check`.
//!
//! Every `tests/lint/*.alf` fixture is parsed, resolved, linted, and its
//! human-rendered diagnostics compared byte-for-byte against the sibling
//! `.expected` file. Fixtures follow a naming convention the tests also
//! enforce:
//!
//! * `wNN_bad.alf` — must produce at least one `WNN` diagnostic,
//! * `wNN_ok.alf` — the matching negative case, must lint clean,
//! * `clean_*.alf` — the paper's example programs, must lint clean.
//!
//! Regenerate the `.expected` files after an intentional change with
//! `UPDATE_LINT_GOLDEN=1 cargo test -p alphonse-lang --test lint_golden`.

use alphonse_lang::diag::{report_json, Diagnostic};
use alphonse_lang::{lints, parse, resolve};
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint")
}

/// All fixture paths, sorted so failures are reported deterministically.
fn fixtures() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/lint exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "alf"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 22, "lint corpus shrank: {paths:?}");
    paths
}

fn lint_fixture(path: &PathBuf) -> (String, Vec<Diagnostic>) {
    let source = fs::read_to_string(path).expect("fixture is readable");
    let program = resolve(&parse(&source).expect("fixture parses"))
        .unwrap_or_else(|e| panic!("{} resolves: {e}", path.display()));
    (source, lints::lint(&program))
}

fn render_all(file: &str, source: &str, diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| d.render(file, source)).collect()
}

#[test]
fn corpus_matches_golden_expectations() {
    let bless = std::env::var_os("UPDATE_LINT_GOLDEN").is_some();
    for path in fixtures() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let (source, diags) = lint_fixture(&path);
        let got = render_all(&name, &source, &diags);
        let expected_path = path.with_extension("expected");
        if bless {
            fs::write(&expected_path, &got).expect("write golden file");
            continue;
        }
        let want = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing golden file {}", expected_path.display()));
        assert_eq!(
            got, want,
            "diagnostics for {name} drifted from the golden file; \
             rerun with UPDATE_LINT_GOLDEN=1 if the change is intentional"
        );
    }
}

#[test]
fn bad_fixtures_fire_their_code_and_ok_fixtures_stay_clean() {
    for path in fixtures() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let (_, diags) = lint_fixture(&path);
        if let Some(code) = stem.strip_suffix("_bad") {
            let code = code.to_uppercase();
            assert!(
                diags.iter().any(|d| d.code == code),
                "{name}: expected a {code} diagnostic, got {diags:?}"
            );
        } else {
            assert!(diags.is_empty(), "{name} must lint clean, got {diags:?}");
        }
    }
}

#[test]
fn every_lint_code_has_positive_and_negative_coverage() {
    let stems: Vec<String> = fixtures()
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    for code in ["w01", "w02", "w03", "w04", "w05", "w06", "w07", "w08"] {
        assert!(
            stems.iter().any(|s| s == &format!("{code}_bad")),
            "missing positive fixture for {code}"
        );
        assert!(
            stems.iter().any(|s| s == &format!("{code}_ok")),
            "missing negative fixture for {code}"
        );
    }
}

#[test]
fn json_reports_count_severities_consistently() {
    for path in fixtures() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let (_, diags) = lint_fixture(&path);
        let errors = diags
            .iter()
            .filter(|d| d.severity == alphonse_lang::diag::Severity::Error)
            .count();
        let json = report_json(&name, &diags);
        assert!(
            json.contains(&format!(
                "\"errors\":{errors},\"warnings\":{}",
                diags.len() - errors
            )),
            "{name}: bad counts in {json}"
        );
    }
}
