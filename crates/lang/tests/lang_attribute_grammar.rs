//! Algorithms 6–9 — the paper's attribute-grammar translation, written in
//! Alphonse-L and executed by the interpreter.
//!
//! This is the paper's Section 7.1 worked example: the let-expression
//! grammar's productions become object types, synthesized `value` becomes a
//! zero-argument maintained method, inherited `env` becomes a one-argument
//! maintained method whose body does the `IF c = o.expl` context dispatch.
//! Environments are objects with a `lookup` method dispatched by subtype
//! (EmptyEnv vs ConsEnv), matching the paper's abstract Env operations.

use alphonse_lang::{compile, Interp, Mode, Val};

const AG: &str = r#"
    (* ----- environments: EmptyEnv / UpdateEnv / LookupEnv ----- *)
    TYPE Env = OBJECT
    METHODS
        lookup(n : TEXT) : INTEGER := LookupEmpty;
    END;
    TYPE ConsEnv = Env OBJECT
        name : TEXT;
        val : INTEGER;
        rest : Env;
    OVERRIDES
        lookup := LookupCons;
    END;

    PROCEDURE LookupEmpty(e : Env; n : TEXT) : INTEGER =
    BEGIN RETURN 0; END LookupEmpty;

    PROCEDURE LookupCons(e : ConsEnv; n : TEXT) : INTEGER =
    BEGIN
        IF e.name = n THEN RETURN e.val; END;
        RETURN e.rest.lookup(n);
    END LookupCons;

    PROCEDURE UpdateEnv(base : Env; n : TEXT; v : INTEGER) : Env =
    VAR e : ConsEnv;
    BEGIN
        e := NEW(ConsEnv);
        e.name := n;
        e.val := v;
        e.rest := base;
        RETURN e;
    END UpdateEnv;

    (* ----- the paper's Algorithm 7: basic types ----- *)
    TYPE Exp = OBJECT
        parent : Exp;
    METHODS
        (*MAINTAINED*) value() : INTEGER := NoValue;
        (*MAINTAINED*) env(c : Exp) : Env := NoEnv;
    END;

    PROCEDURE NoValue(o : Exp) : INTEGER =
    BEGIN RETURN 0; END NoValue;

    PROCEDURE NoEnv(o : Exp; c : Exp) : Env =
    BEGIN RETURN NIL; END NoEnv;

    (* ----- Algorithm 8: one type per production ----- *)
    TYPE RootExp = Exp OBJECT
        exp : Exp;
    OVERRIDES
        (*MAINTAINED*) value := RootVal;
        (*MAINTAINED*) env := NullEnv;
    END;

    TYPE PlusExp = Exp OBJECT
        expl, exp2 : Exp;
    OVERRIDES
        (*MAINTAINED*) value := SumVal;
        (*MAINTAINED*) env := PassEnv;
    END;

    TYPE LetExp = Exp OBJECT
        expl, exp2 : Exp;
        id : TEXT;
    OVERRIDES
        (*MAINTAINED*) value := Exp2Val;
        (*MAINTAINED*) env := LetEnv;
    END;

    TYPE IdExp = Exp OBJECT
        id : TEXT;
    OVERRIDES
        (*MAINTAINED*) value := IdVal;
    END;

    TYPE IntExp = Exp OBJECT
        int : INTEGER;
    OVERRIDES
        (*MAINTAINED*) value := IntVal;
    END;

    (* ----- Algorithm 9: method implementations ----- *)
    PROCEDURE RootVal(o : RootExp) : INTEGER =
    BEGIN RETURN o.exp.value(); END RootVal;

    PROCEDURE NullEnv(o : RootExp; c : Exp) : Env =
    BEGIN RETURN NEW(Env); END NullEnv;

    PROCEDURE SumVal(o : PlusExp) : INTEGER =
    BEGIN RETURN o.expl.value() + o.exp2.value(); END SumVal;

    PROCEDURE PassEnv(o : PlusExp; c : Exp) : Env =
    BEGIN RETURN o.parent.env(o); END PassEnv;

    PROCEDURE Exp2Val(o : LetExp) : INTEGER =
    BEGIN RETURN o.exp2.value(); END Exp2Val;

    PROCEDURE LetEnv(o : LetExp; c : Exp) : Env =
    BEGIN
        IF c = o.expl THEN
            RETURN o.parent.env(o);
        ELSE
            RETURN UpdateEnv(o.parent.env(o), o.id, o.expl.value());
        END;
    END LetEnv;

    PROCEDURE IdVal(o : IdExp) : INTEGER =
    BEGIN RETURN o.parent.env(o).lookup(o.id); END IdVal;

    PROCEDURE IntVal(o : IntExp) : INTEGER =
    BEGIN RETURN o.int; END IntVal;

    (* ----- tree builders (the parser's output, hand-rolled) ----- *)
    PROCEDURE MakeInt(v : INTEGER) : Exp =
    VAR e : IntExp;
    BEGIN e := NEW(IntExp); e.int := v; RETURN e; END MakeInt;

    PROCEDURE MakeId(n : TEXT) : Exp =
    VAR e : IdExp;
    BEGIN e := NEW(IdExp); e.id := n; RETURN e; END MakeId;

    PROCEDURE MakePlus(a, b : Exp) : Exp =
    VAR e : PlusExp;
    BEGIN
        e := NEW(PlusExp);
        e.expl := a;
        e.exp2 := b;
        a.parent := e;
        b.parent := e;
        RETURN e;
    END MakePlus;

    PROCEDURE MakeLet(n : TEXT; bound, body : Exp) : Exp =
    VAR e : LetExp;
    BEGIN
        e := NEW(LetExp);
        e.id := n;
        e.expl := bound;
        e.exp2 := body;
        bound.parent := e;
        body.parent := e;
        RETURN e;
    END MakeLet;

    PROCEDURE MakeRoot(e : Exp) : Exp =
    VAR r : RootExp;
    BEGIN
        r := NEW(RootExp);
        r.exp := e;
        e.parent := r;
        RETURN r;
    END MakeRoot;

    (* let a = 10 in let b = a + 5 in a + b ni ni *)
    VAR root, boundA : Exp;

    PROCEDURE Build() =
    VAR inner, outer : Exp;
    BEGIN
        boundA := MakeInt(10);
        inner := MakeLet("b", MakePlus(MakeId("a"), MakeInt(5)),
                         MakePlus(MakeId("a"), MakeId("b")));
        outer := MakeLet("a", boundA, inner);
        root := MakeRoot(outer);
    END Build;

    PROCEDURE Value() : INTEGER =
    BEGIN RETURN root.value(); END Value;
"#;

fn setup(mode: Mode) -> Interp {
    let program = compile(AG).expect("AG program compiles");
    let interp = Interp::new(program, mode).unwrap();
    interp.call("Build", vec![]).unwrap();
    interp
}

#[test]
fn the_papers_example_attributes_correctly() {
    for mode in [Mode::Conventional, Mode::Alphonse] {
        let interp = setup(mode);
        // a = 10, b = a + 5 = 15, a + b = 25.
        assert_eq!(
            interp.call("Value", vec![]).unwrap(),
            Val::Int(25),
            "mode {mode:?}"
        );
    }
}

#[test]
fn repeat_attribution_is_cached() {
    let interp = setup(Mode::Alphonse);
    interp.call("Value", vec![]).unwrap();
    let rt = interp.runtime().unwrap().clone();
    let before = rt.stats();
    for _ in 0..5 {
        assert_eq!(interp.call("Value", vec![]).unwrap(), Val::Int(25));
    }
    let d = rt.stats().delta_since(&before);
    assert_eq!(d.executions, 0, "fully cached re-attribution");
}

#[test]
fn terminal_edit_reattributes() {
    let interp = setup(Mode::Alphonse);
    assert_eq!(interp.call("Value", vec![]).unwrap(), Val::Int(25));
    // Edit the literal bound to `a`: 10 -> 100. a=100, b=105, a+b=205.
    let bound = interp.global("boundA").unwrap();
    interp.set_field(&bound, "int", Val::Int(100)).unwrap();
    assert_eq!(interp.call("Value", vec![]).unwrap(), Val::Int(205));

    // And in conventional mode, the same edit gives the same answer
    // (Theorem 5.1), just exhaustively.
    let conv = setup(Mode::Conventional);
    let bound = conv.global("boundA").unwrap();
    conv.set_field(&bound, "int", Val::Int(100)).unwrap();
    assert_eq!(conv.call("Value", vec![]).unwrap(), Val::Int(205));
}

#[test]
fn subtree_replacement_reattributes() {
    let interp = setup(Mode::Alphonse);
    assert_eq!(interp.call("Value", vec![]).unwrap(), Val::Int(25));
    // Replace the binding of `a` with `3 + 4`: a=7, b=12, a+b=19.
    let three_plus_four = {
        let three = interp.call("MakeInt", vec![Val::Int(3)]).unwrap();
        let four = interp.call("MakeInt", vec![Val::Int(4)]).unwrap();
        interp.call("MakePlus", vec![three, four]).unwrap()
    };
    // outer let is root.exp; set its expl and the parent pointer.
    let root = interp.global("root").unwrap();
    let outer = interp.field(&root, "exp").unwrap();
    interp
        .set_field(&outer, "expl", three_plus_four.clone())
        .unwrap();
    interp
        .set_field(&three_plus_four, "parent", outer.clone())
        .unwrap();
    assert_eq!(interp.call("Value", vec![]).unwrap(), Val::Int(19));
}

#[test]
fn shadowing_follows_environment_chains() {
    // Build: let a = 1 in let a = a + 1 in a ni ni  => 2
    let program = compile(AG).unwrap();
    let interp = Interp::new(program, Mode::Alphonse).unwrap();
    let one = interp.call("MakeInt", vec![Val::Int(1)]).unwrap();
    let inner_bound = {
        let a_ref = interp.call("MakeId", vec![Val::text("a")]).unwrap();
        let one2 = interp.call("MakeInt", vec![Val::Int(1)]).unwrap();
        interp.call("MakePlus", vec![a_ref, one2]).unwrap()
    };
    let body = interp.call("MakeId", vec![Val::text("a")]).unwrap();
    let inner = interp
        .call("MakeLet", vec![Val::text("a"), inner_bound, body])
        .unwrap();
    let outer = interp
        .call("MakeLet", vec![Val::text("a"), one, inner])
        .unwrap();
    let root = interp.call("MakeRoot", vec![outer]).unwrap();
    let v = interp.call_method(root, "value", vec![]).unwrap();
    assert_eq!(v, Val::Int(2));
}
