//! Unparse round-trip properties.
//!
//! The differential suite already checks that *generated* programs (cached
//! procedures over integer globals) round-trip through the printer. These
//! tests cover the syntax the generator never produces — object types,
//! method suites, `OVERRIDES`, all three pragmas, `(*UNCHECKED*)`
//! expressions, arrays — in two ways:
//!
//! 1. every fixture in the lint corpus (which includes the paper's example
//!    programs) is a printer fixpoint: `unparse ∘ parse` is idempotent and
//!    the printed form still resolves;
//! 2. a property test over randomly generated pragma-bearing expressions
//!    embedded in a cached procedure.

use alphonse_lang::{parse, resolve, unparse};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn corpus() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint");
    let mut out: Vec<(String, String)> = fs::read_dir(dir)
        .expect("tests/lint exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "alf"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read_to_string(&p).expect("fixture is readable"),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn corpus_round_trips_through_the_printer() {
    for (name, source) in corpus() {
        let module = parse(&source).unwrap_or_else(|e| panic!("{name} parses: {e}"));
        let printed = unparse(&module);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed form fails to parse: {e}\n{printed}"));
        let reprinted = unparse(&reparsed);
        assert_eq!(printed, reprinted, "{name}: unparse is not a fixpoint");
        resolve(&reparsed)
            .unwrap_or_else(|e| panic!("{name}: printed form fails to resolve: {e}\n{printed}"));
    }
}

/// A random expression rendered directly as source text, so the generator
/// can also vary parenthesization and whitespace the printer normalizes.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-9i64..100).prop_map(|n| {
            if n < 0 {
                format!("({n})")
            } else {
                n.to_string()
            }
        }),
        Just("x".to_string()),
        Just("g".to_string()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![Just("+"), Just("-"), Just("*"), Just("DIV"), Just("MOD"),]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("MAX({a},  {b})")),
            inner.clone().prop_map(|e| format!("(*UNCHECKED*) ({e})")),
            inner.clone().prop_map(|e| format!("Twice( {e} )")),
            inner.prop_map(|e| format!("( ( {e} ) )")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pragma-bearing expressions survive print → parse → print unchanged,
    /// no matter how the original source was parenthesized or spaced.
    #[test]
    fn pragma_expressions_round_trip(body in expr_strategy(), eager in any::<bool>()) {
        let pragma = if eager { "(*CACHED EAGER*)" } else { "(*CACHED*)" };
        let src = format!(
            "VAR g : INTEGER := 1;\n\
             PROCEDURE Twice(n : INTEGER) : INTEGER = BEGIN RETURN n * 2; END Twice;\n\
             {pragma} PROCEDURE F(x : INTEGER) : INTEGER =\n\
             BEGIN RETURN {body}; END F;\n"
        );
        let printed = unparse(&parse(&src).unwrap());
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(&printed, &unparse(&reparsed), "printed:\n{}", printed);
        // The normalized form must still be a valid program, not just a
        // parseable one.
        resolve(&reparsed).unwrap();
    }
}
