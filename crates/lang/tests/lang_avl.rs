//! Algorithm 11 — the paper's self-balancing AVL tree, written in
//! Alphonse-L and executed by the interpreter.
//!
//! This is the paper's most demanding program: the maintained `balance`
//! method performs rotations as side effects on tracked fields and
//! re-enters its own executing instances (`RETURN RotateRight(t).balance()`
//! reaches the caller's instance through the demoted child).

use alphonse_lang::{compile, Interp, Mode, Val};

const AVL: &str = r#"
    TYPE Avl = OBJECT
        left, right : Avl;
        key : INTEGER;
    METHODS
        (*MAINTAINED*) height() : INTEGER := Height;
        (*MAINTAINED*) balance() : Avl := Balance;
    END;
    TYPE AvlNil = Avl OBJECT
    OVERRIDES
        (*MAINTAINED*) height := HeightNil;
        (*MAINTAINED*) balance := BalanceNil;
    END;

    PROCEDURE Height(t : Avl) : INTEGER =
    BEGIN
        RETURN MAX(t.left.height(), t.right.height()) + 1;
    END Height;

    PROCEDURE HeightNil(t : Avl) : INTEGER =
    BEGIN RETURN 0; END HeightNil;

    PROCEDURE Diff(t : Avl) : INTEGER =
    BEGIN RETURN t.left.height() - t.right.height(); END Diff;

    PROCEDURE RotateRight(t : Avl) : Avl =
    VAR s, b : Avl;
    BEGIN
        s := t.left;
        b := s.right;
        s.right := t;
        t.left := b;
        RETURN s;
    END RotateRight;

    PROCEDURE RotateLeft(t : Avl) : Avl =
    VAR s, b : Avl;
    BEGIN
        s := t.right;
        b := s.left;
        s.left := t;
        t.right := b;
        RETURN s;
    END RotateLeft;

    PROCEDURE Balance(t : Avl) : Avl =
    BEGIN
        t.left := t.left.balance();
        t.right := t.right.balance();
        IF Diff(t) > 1 THEN
            IF Diff(t.left) < 0 THEN
                t.left := RotateLeft(t.left);
            END;
            RETURN RotateRight(t).balance();
        ELSIF Diff(t) < -1 THEN
            IF Diff(t.right) > 0 THEN
                t.right := RotateRight(t.right);
            END;
            RETURN RotateLeft(t).balance();
        END;
        RETURN t;
    END Balance;

    PROCEDURE BalanceNil(t : Avl) : Avl =
    BEGIN RETURN t; END BalanceNil;

    VAR nil, root : Avl;

    PROCEDURE Init() =
    BEGIN
        nil := NEW(AvlNil);
        root := nil;
    END Init;

    PROCEDURE MakeLeaf(key : INTEGER) : Avl =
    VAR t : Avl;
    BEGIN
        t := NEW(Avl);
        t.key := key;
        t.left := nil;
        t.right := nil;
        RETURN t;
    END MakeLeaf;

    (* Plain unbalanced-BST insertion: the mutator side. *)
    PROCEDURE Insert(key : INTEGER) =
    VAR cur : Avl;
    BEGIN
        IF root = nil THEN
            root := MakeLeaf(key);
            RETURN;
        END;
        cur := root;
        WHILE TRUE DO
            IF key = cur.key THEN
                RETURN;
            ELSIF key < cur.key THEN
                IF cur.left = nil THEN
                    cur.left := MakeLeaf(key);
                    RETURN;
                END;
                cur := cur.left;
            ELSE
                IF cur.right = nil THEN
                    cur.right := MakeLeaf(key);
                    RETURN;
                END;
                cur := cur.right;
            END;
        END;
    END Insert;

    (* "The programmer is simply required to call the balance method prior
       to performing a search operation." *)
    PROCEDURE Rebalance() =
    BEGIN root := root.balance(); END Rebalance;

    PROCEDURE Contains(key : INTEGER) : BOOLEAN =
    VAR cur : Avl;
    BEGIN
        Rebalance();
        cur := root;
        WHILE cur # nil DO
            IF key = cur.key THEN RETURN TRUE;
            ELSIF key < cur.key THEN cur := cur.left;
            ELSE cur := cur.right;
            END;
        END;
        RETURN FALSE;
    END Contains;

    (* Exhaustive validation helpers (test oracle). *)
    PROCEDURE CheckAvl(t : Avl) : BOOLEAN =
    VAR d : INTEGER;
    BEGIN
        IF t = nil THEN RETURN TRUE; END;
        d := Diff(t);
        IF d > 1 OR d < -1 THEN RETURN FALSE; END;
        RETURN CheckAvl(t.left) AND CheckAvl(t.right);
    END CheckAvl;

    PROCEDURE CheckRoot() : BOOLEAN =
    BEGIN RETURN CheckAvl(root); END CheckRoot;

    PROCEDURE RootHeight() : INTEGER =
    BEGIN RETURN root.height(); END RootHeight;

    PROCEDURE CountKeys(t : Avl) : INTEGER =
    BEGIN
        IF t = nil THEN RETURN 0; END;
        RETURN CountKeys(t.left) + CountKeys(t.right) + 1;
    END CountKeys;

    PROCEDURE Size() : INTEGER =
    BEGIN RETURN CountKeys(root); END Size;
"#;

fn setup(mode: Mode) -> Interp {
    let program = compile(AVL).expect("AVL program compiles");
    let interp = Interp::new(program, mode).unwrap();
    interp.set_fuel(2_000_000_000);
    interp.call("Init", vec![]).unwrap();
    interp
}

#[test]
fn sorted_insertions_self_balance() {
    let interp = setup(Mode::Alphonse);
    for k in 0..64 {
        interp.call("Insert", vec![Val::Int(k)]).unwrap();
        interp.call("Rebalance", vec![]).unwrap();
    }
    assert_eq!(interp.call("CheckRoot", vec![]).unwrap(), Val::Bool(true));
    assert_eq!(interp.call("Size", vec![]).unwrap(), Val::Int(64));
    let h = interp.call("RootHeight", vec![]).unwrap();
    match h {
        Val::Int(h) => assert!(
            h <= 8,
            "64 sorted keys must balance to height <= 8, got {h}"
        ),
        other => panic!("unexpected {other:?}"),
    }
    for k in [0i64, 31, 63] {
        assert_eq!(
            interp.call("Contains", vec![Val::Int(k)]).unwrap(),
            Val::Bool(true)
        );
    }
    assert_eq!(
        interp.call("Contains", vec![Val::Int(100)]).unwrap(),
        Val::Bool(false)
    );
}

#[test]
fn batched_offline_balancing_works() {
    // The paper: "the algorithm is both an off-line as well as on-line
    // algorithm" — build a fully degenerate chain, balance once.
    let interp = setup(Mode::Alphonse);
    for k in 0..128 {
        interp.call("Insert", vec![Val::Int(k)]).unwrap();
    }
    interp.call("Rebalance", vec![]).unwrap();
    assert_eq!(interp.call("CheckRoot", vec![]).unwrap(), Val::Bool(true));
    assert_eq!(interp.call("Size", vec![]).unwrap(), Val::Int(128));
}

#[test]
fn incremental_rebalance_is_cheap() {
    let interp = setup(Mode::Alphonse);
    for k in 0..256 {
        interp.call("Insert", vec![Val::Int(k)]).unwrap();
        interp.call("Rebalance", vec![]).unwrap();
    }
    let rt = interp.runtime().unwrap().clone();
    // One more insert: the incremental work is near the path length, far
    // below the 256 instances a full re-execution would need.
    let before = rt.stats();
    interp.call("Insert", vec![Val::Int(1000)]).unwrap();
    interp.call("Rebalance", vec![]).unwrap();
    let d = rt.stats().delta_since(&before);
    assert!(
        d.executions <= 80,
        "per-insert rebalance should be ~path-sized, got {}",
        d.executions
    );
    assert_eq!(interp.call("CheckRoot", vec![]).unwrap(), Val::Bool(true));
}

#[test]
fn conventional_and_alphonse_agree() {
    let conv = setup(Mode::Conventional);
    let alph = setup(Mode::Alphonse);
    // Deterministic pseudo-random keys.
    let mut x: i64 = 12345;
    let mut keys = Vec::new();
    for _ in 0..48 {
        x = (x.wrapping_mul(1103515245).wrapping_add(12345)) % 1000;
        keys.push(x.abs() % 100);
    }
    for &k in &keys {
        conv.call("Insert", vec![Val::Int(k)]).unwrap();
        alph.call("Insert", vec![Val::Int(k)]).unwrap();
        conv.call("Rebalance", vec![]).unwrap();
        alph.call("Rebalance", vec![]).unwrap();
    }
    assert_eq!(
        conv.call("Size", vec![]).unwrap(),
        alph.call("Size", vec![]).unwrap()
    );
    assert_eq!(conv.call("CheckRoot", vec![]).unwrap(), Val::Bool(true));
    assert_eq!(alph.call("CheckRoot", vec![]).unwrap(), Val::Bool(true));
    for probe in 0..100 {
        assert_eq!(
            conv.call("Contains", vec![Val::Int(probe)]).unwrap(),
            alph.call("Contains", vec![Val::Int(probe)]).unwrap(),
            "Contains({probe}) diverged (Theorem 5.1)"
        );
    }
}
