//! The paper's own example programs, executed end-to-end in both modes.

use alphonse_lang::{compile, Interp, Mode, Val};

/// Algorithm 1: the maintained-height tree, plus host-callable builders.
const HEIGHT_TREE: &str = r#"
    TYPE Tree = OBJECT
        left, right : Tree;
    METHODS
        (*MAINTAINED*) height() : INTEGER := Height;
    END;
    TYPE TreeNil = Tree OBJECT
    OVERRIDES
        (*MAINTAINED*) height := HeightNil;
    END;

    PROCEDURE Height(t : Tree) : INTEGER =
    BEGIN
        RETURN MAX(t.left.height(), t.right.height()) + 1;
    END Height;

    PROCEDURE HeightNil(t : Tree) : INTEGER =
    BEGIN RETURN 0; END HeightNil;

    VAR nil : Tree;

    PROCEDURE Init() =
    BEGIN nil := NEW(TreeNil); END Init;

    PROCEDURE MakeNode(l, r : Tree) : Tree =
    VAR t : Tree;
    BEGIN
        t := NEW(Tree);
        t.left := l;
        t.right := r;
        RETURN t;
    END MakeNode;

    PROCEDURE BuildBalanced(depth : INTEGER) : Tree =
    BEGIN
        IF depth = 0 THEN RETURN nil; END;
        RETURN MakeNode(BuildBalanced(depth - 1), BuildBalanced(depth - 1));
    END BuildBalanced;
"#;

fn setup(mode: Mode) -> (Interp, Val) {
    let program = compile(HEIGHT_TREE).expect("paper program compiles");
    let interp = Interp::new(program, mode).unwrap();
    interp.call("Init", vec![]).unwrap();
    let root = interp.call("BuildBalanced", vec![Val::Int(5)]).unwrap();
    (interp, root)
}

#[test]
fn maintained_height_is_correct_in_both_modes() {
    for mode in [Mode::Conventional, Mode::Alphonse] {
        let (interp, root) = setup(mode);
        assert_eq!(
            interp.call_method(root.clone(), "height", vec![]).unwrap(),
            Val::Int(5),
            "mode {mode:?}"
        );
    }
}

#[test]
fn repeat_height_queries_are_cached_in_alphonse_mode() {
    let (interp, root) = setup(Mode::Alphonse);
    interp.call_method(root.clone(), "height", vec![]).unwrap();
    let rt = interp.runtime().unwrap();
    let before = rt.stats();
    for _ in 0..5 {
        interp.call_method(root.clone(), "height", vec![]).unwrap();
    }
    let d = rt.stats().delta_since(&before);
    assert_eq!(d.executions, 0, "repeat queries are O(1) cache hits");
    assert_eq!(d.cache_hits, 5);
}

#[test]
fn conventional_mode_recomputes_exhaustively() {
    let (interp, root) = setup(Mode::Conventional);
    let s0 = interp.steps();
    interp.call_method(root.clone(), "height", vec![]).unwrap();
    let first = interp.steps() - s0;
    let s1 = interp.steps();
    interp.call_method(root.clone(), "height", vec![]).unwrap();
    let second = interp.steps() - s1;
    assert_eq!(first, second, "every query repeats the full pass");
    assert!(first > 100, "a depth-5 tree costs hundreds of steps");
}

#[test]
fn leaf_change_updates_incrementally() {
    let (interp, root) = setup(Mode::Alphonse);
    interp.call_method(root.clone(), "height", vec![]).unwrap();

    // Mutator: graft a 2-chain under the leftmost leaf node.
    let mut leftmost = root.clone();
    loop {
        let l = interp.field(&leftmost, "left").unwrap();
        // Stop when the child is the shared nil (its `left` is NIL).
        if interp.field(&l, "left").unwrap() == Val::Nil {
            break;
        }
        leftmost = l;
    }
    let nil = interp.global("nil").unwrap();
    let n1 = interp
        .call("MakeNode", vec![nil.clone(), nil.clone()])
        .unwrap();
    let n2 = interp.call("MakeNode", vec![n1, nil.clone()]).unwrap();
    interp.set_field(&leftmost, "left", n2).unwrap();

    let rt = interp.runtime().unwrap();
    let before = rt.stats();
    assert_eq!(
        interp.call_method(root.clone(), "height", vec![]).unwrap(),
        Val::Int(7)
    );
    let d = rt.stats().delta_since(&before);
    // Only the path to the root plus the new nodes re-executes — far less
    // than the 63 internal nodes of the full tree.
    assert!(
        d.executions <= 12,
        "expected ~path-length executions, got {}",
        d.executions
    );
}

#[test]
fn both_modes_agree_after_mutations() {
    let (conv, conv_root) = setup(Mode::Conventional);
    let (alph, alph_root) = setup(Mode::Alphonse);
    // Same mutation on both: cut the root's right subtree down to nil.
    let nil_c = conv.global("nil").unwrap();
    let nil_a = alph.global("nil").unwrap();
    conv.set_field(&conv_root, "right", nil_c).unwrap();
    alph.set_field(&alph_root, "right", nil_a).unwrap();
    let hc = conv.call_method(conv_root, "height", vec![]).unwrap();
    let ha = alph.call_method(alph_root, "height", vec![]).unwrap();
    assert_eq!(hc, ha, "Theorem 5.1: identical results");
    assert_eq!(hc, Val::Int(5), "left subtree still has depth 4 + root");
}

/// The `(*CACHED*)` pragma on a classic exponential recursion.
const FIB: &str = r#"
    (*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
    BEGIN
        IF n < 2 THEN RETURN n; END;
        RETURN Fib(n - 1) + Fib(n - 2);
    END Fib;
"#;

#[test]
fn cached_fib_is_linear_conventional_is_exponential() {
    let program = compile(FIB).unwrap();
    let alph = Interp::new(program.clone(), Mode::Alphonse).unwrap();
    let conv = Interp::new(program, Mode::Conventional).unwrap();
    assert_eq!(
        alph.call("Fib", vec![Val::Int(25)]).unwrap(),
        Val::Int(75025)
    );
    assert_eq!(
        conv.call("Fib", vec![Val::Int(25)]).unwrap(),
        Val::Int(75025)
    );
    // Function caching turns the call tree into a chain.
    let rt = alph.runtime().unwrap();
    assert_eq!(rt.stats().executions, 26);
    assert!(
        conv.steps() > 100 * alph.steps() / 10,
        "conventional recomputation dwarfs cached execution: {} vs {}",
        conv.steps(),
        alph.steps()
    );
}

/// Non-combinator caching (Section 4.2): a cached procedure reading a
/// top-level variable is correctly invalidated by mutator writes.
const NON_COMBINATOR: &str = r#"
    VAR rate : INTEGER := 7;

    (*CACHED*) PROCEDURE Scaled(n : INTEGER) : INTEGER =
    BEGIN
        RETURN n * rate;
    END Scaled;
"#;

#[test]
fn cached_procedures_may_read_global_state() {
    let program = compile(NON_COMBINATOR).unwrap();
    let interp = Interp::new(program, Mode::Alphonse).unwrap();
    assert_eq!(
        interp.call("Scaled", vec![Val::Int(3)]).unwrap(),
        Val::Int(21)
    );
    assert_eq!(
        interp.call("Scaled", vec![Val::Int(3)]).unwrap(),
        Val::Int(21)
    );
    let rt = interp.runtime().unwrap().clone();
    assert_eq!(rt.stats().executions, 1, "second call is a pure hit");
    interp.set_global("rate", Val::Int(10)).unwrap();
    assert_eq!(
        interp.call("Scaled", vec![Val::Int(3)]).unwrap(),
        Val::Int(30)
    );
}

/// Section 6.4: `(*UNCHECKED*)` removes dependencies by programmer fiat.
const UNCHECKED: &str = r#"
    VAR probe, stable : INTEGER := 0;

    (*CACHED*) PROCEDURE Mixed(n : INTEGER) : INTEGER =
    BEGIN
        RETURN stable + (*UNCHECKED*) probe;
    END Mixed;
"#;

#[test]
fn unchecked_reads_do_not_invalidate_lang() {
    let program = compile(UNCHECKED).unwrap();
    let interp = Interp::new(program, Mode::Alphonse).unwrap();
    interp.set_global("stable", Val::Int(1)).unwrap();
    interp.set_global("probe", Val::Int(100)).unwrap();
    assert_eq!(
        interp.call("Mixed", vec![Val::Int(0)]).unwrap(),
        Val::Int(101)
    );
    // probe changes are invisible (stale by design)…
    interp.set_global("probe", Val::Int(999)).unwrap();
    assert_eq!(
        interp.call("Mixed", vec![Val::Int(0)]).unwrap(),
        Val::Int(101)
    );
    // …until a tracked dependency changes.
    interp.set_global("stable", Val::Int(2)).unwrap();
    assert_eq!(
        interp.call("Mixed", vec![Val::Int(0)]).unwrap(),
        Val::Int(1001)
    );
}
